//! Offline-CRec: the sampling KNN algorithm as a map-reduce back-end.
//!
//! "Offline-CRec is an offline solution that uses the same algorithm as
//! HyRec (i.e. a sampling approach for KNN) but with a map-reduce-based
//! architecture" (Section 5.4). Each round maps every user to a new KNN
//! selection computed from the *previous* round's table (candidates =
//! current KNN ∪ 2-hop KNN ∪ random), then reduces into the next table —
//! the synchronous analogue of HyRec's per-request iterations. Converges in
//! 10–20 rounds like the epidemic protocols it derives from.

use super::{exhaustive::default_workers, parallel_chunks, OfflineBackend};
use hyrec_core::{knn, Cosine, Neighborhood, SharedProfile, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Sampling-based offline KNN (the paper's cheapest back-end).
#[derive(Debug, Clone, Copy)]
pub struct CRecBackend {
    /// Number of worker threads for the map phase.
    pub workers: usize,
    /// Maximum number of rounds (the paper observes convergence in 10–20).
    pub max_rounds: usize,
    /// Stop early when the round-over-round improvement in average view
    /// similarity drops below this threshold.
    pub epsilon: f64,
    /// RNG seed for the random candidate legs.
    pub seed: u64,
}

impl Default for CRecBackend {
    fn default() -> Self {
        Self {
            workers: default_workers(),
            max_rounds: 20,
            epsilon: 1e-4,
            seed: 0xC4EC,
        }
    }
}

impl CRecBackend {
    /// Creates a back-end with explicit workers and defaults elsewhere.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            ..Self::default()
        }
    }

    /// Runs the rounds, returning the table and the number of rounds used.
    pub fn compute_with_rounds(
        &self,
        profiles: &[(UserId, SharedProfile)],
        k: usize,
    ) -> (Vec<(UserId, Neighborhood)>, usize) {
        let n = profiles.len();
        if n == 0 {
            return (Vec::new(), 0);
        }
        let index: HashMap<UserId, usize> = profiles
            .iter()
            .enumerate()
            .map(|(i, (u, _))| (*u, i))
            .collect();

        // Round 0: random neighbourhoods (how a cold system starts).
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut table: Vec<Vec<usize>> = (0..n)
            .map(|me| {
                let mut picks = HashSet::new();
                while picks.len() < k.min(n.saturating_sub(1)) {
                    let v = rng.gen_range(0..n);
                    if v != me {
                        picks.insert(v);
                    }
                }
                picks.into_iter().collect()
            })
            .collect();

        let mut previous_quality = 0.0f64;
        let mut rounds_used = 0usize;
        let mut hoods: Vec<Neighborhood> = vec![Neighborhood::new(); n];

        for round in 0..self.max_rounds {
            rounds_used = round + 1;
            let base_seed = self.seed.wrapping_add(round as u64);
            // Map: each user selects top-k from neighbours ∪ 2-hop ∪ random,
            // reading only the previous round's table (synchronous rounds).
            let users: Vec<usize> = (0..n).collect();
            let new_hoods: Vec<Neighborhood> = parallel_chunks(&users, self.workers, |&me| {
                let mut candidates: HashSet<usize> = HashSet::new();
                for &v in &table[me] {
                    candidates.insert(v);
                    for &w in &table[v] {
                        candidates.insert(w);
                    }
                }
                // Deterministic per-user random leg.
                let mut local_rng =
                    StdRng::seed_from_u64(base_seed ^ (me as u64).wrapping_mul(0x9E37_79B9));
                for _ in 0..k {
                    candidates.insert(local_rng.gen_range(0..n));
                }
                candidates.remove(&me);

                let (_, ref my_profile) = profiles[me];
                knn::select(
                    my_profile,
                    candidates
                        .iter()
                        .map(|&v| (profiles[v].0, profiles[v].1.as_ref())),
                    k,
                    &Cosine,
                )
            });

            // Reduce: install the new table.
            table = new_hoods
                .iter()
                .map(|hood| hood.users().map(|u| index[&u]).collect())
                .collect();
            hoods = new_hoods;

            let quality: f64 =
                hoods.iter().map(Neighborhood::view_similarity).sum::<f64>() / n as f64;
            if round > 0 && (quality - previous_quality).abs() < self.epsilon {
                break;
            }
            previous_quality = quality;
        }

        (
            profiles
                .iter()
                .zip(hoods)
                .map(|((u, _), hood)| (*u, hood))
                .collect(),
            rounds_used,
        )
    }
}

impl OfflineBackend for CRecBackend {
    fn compute(
        &self,
        profiles: &[(UserId, SharedProfile)],
        k: usize,
    ) -> Vec<(UserId, Neighborhood)> {
        self.compute_with_rounds(profiles, k).0
    }

    fn name(&self) -> &'static str {
        "crec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::ExhaustiveBackend;

    fn clustered_profiles(clusters: u32, per_cluster: u32) -> Vec<(UserId, SharedProfile)> {
        (0..clusters * per_cluster)
            .map(|u| {
                let cluster = u % clusters;
                let profile = hyrec_core::Profile::from_liked(
                    (0..8u32).map(|i| cluster * 100 + i).collect::<Vec<_>>(),
                );
                (UserId(u), SharedProfile::new(profile))
            })
            .collect()
    }

    #[test]
    fn converges_close_to_ideal() {
        let profiles = clustered_profiles(4, 20);
        let k = 5;
        let ideal = ExhaustiveBackend::new(2).compute(&profiles, k);
        let (approx, rounds) = CRecBackend::new(2).compute_with_rounds(&profiles, k);

        let quality = |t: &[(UserId, Neighborhood)]| {
            t.iter().map(|(_, h)| h.view_similarity()).sum::<f64>() / t.len() as f64
        };
        let (qi, qa) = (quality(&ideal), quality(&approx));
        assert!(
            qa > qi * 0.9,
            "sampling quality {qa:.3} below 90% of ideal {qi:.3} (rounds {rounds})"
        );
        assert!(rounds <= 20);
    }

    #[test]
    fn is_deterministic() {
        let profiles = clustered_profiles(3, 10);
        let a = CRecBackend::new(2).compute(&profiles, 4);
        let b = CRecBackend::new(2).compute(&profiles, 4);
        let views = |t: &[(UserId, Neighborhood)]| {
            t.iter()
                .map(|(_, h)| h.view_similarity())
                .collect::<Vec<_>>()
        };
        assert_eq!(views(&a), views(&b));
    }

    #[test]
    fn handles_tiny_populations() {
        let profiles = clustered_profiles(1, 2);
        let table = CRecBackend::new(1).compute(&profiles, 5);
        assert_eq!(table.len(), 2);
        for (user, hood) in &table {
            assert!(!hood.contains(*user));
            assert_eq!(hood.len(), 1);
        }
        assert!(CRecBackend::new(1).compute(&[], 3).is_empty());
    }

    #[test]
    fn early_stop_uses_fewer_rounds_on_easy_input() {
        let profiles = clustered_profiles(2, 10);
        let backend = CRecBackend {
            max_rounds: 50,
            ..CRecBackend::new(2)
        };
        let (_, rounds) = backend.compute_with_rounds(&profiles, 4);
        assert!(rounds < 50, "early stopping never triggered");
    }
}
