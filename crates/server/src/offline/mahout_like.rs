//! Mahout-on-Hadoop stand-in: exact inverted-index KNN with materialized
//! shuffle stages.
//!
//! The paper benchmarks Mahout's user-based CF on Hadoop, single node
//! (*MahoutSingle*) and a two-node cluster (*ClusMahout*). Mahout computes
//! user-user similarities through an item-inverted index in staged
//! map-reduce jobs, materializing the intermediate co-occurrence pairs
//! between stages. This back-end reproduces exactly that pipeline:
//!
//! 1. **Stage 1 (map)**: invert profiles into item → users postings,
//!    capping postings at [`MahoutLikeBackend::max_prefs_per_item`] exactly
//!    like Mahout's `maxPrefsPerUser`/sampling knobs (without a cap,
//!    popular-item postings make the pair space quadratic).
//! 2. **Shuffle**: serialize the postings to length-prefixed byte runs and
//!    parse them back — Hadoop's materialization cost, physically performed
//!    rather than modelled.
//! 3. **Stage 2 (map)**: per user, accumulate co-rating counts from the
//!    postings of the user's items.
//! 4. **Stage 3 (reduce)**: cosine from counts, top-k per user.
//!
//! `nodes × threads_per_node` bounds worker parallelism, letting the same
//! code play both *MahoutSingle* (1 node) and *ClusMahout* (2 nodes).

use super::{parallel_chunks, OfflineBackend};
use hyrec_core::{topk::TopK, Neighbor, Neighborhood, SharedProfile, UserId};
use std::collections::HashMap;

/// Exact KNN via item co-occurrence with Hadoop-style staging.
#[derive(Debug, Clone, Copy)]
pub struct MahoutLikeBackend {
    /// Simulated cluster nodes (1 = MahoutSingle, 2 = ClusMahout).
    pub nodes: usize,
    /// Worker threads per node (the paper's nodes are 4-core).
    pub threads_per_node: usize,
    /// Posting-list cap per item (Mahout's sampling knob). `usize::MAX`
    /// disables capping.
    pub max_prefs_per_item: usize,
}

impl Default for MahoutLikeBackend {
    fn default() -> Self {
        Self {
            nodes: 1,
            threads_per_node: 4,
            max_prefs_per_item: 300,
        }
    }
}

impl MahoutLikeBackend {
    /// A single-node deployment (the paper's *MahoutSingle*).
    #[must_use]
    pub fn single() -> Self {
        Self::default()
    }

    /// A two-node deployment (the paper's *ClusMahout*).
    #[must_use]
    pub fn cluster() -> Self {
        Self {
            nodes: 2,
            ..Self::default()
        }
    }

    fn workers(&self) -> usize {
        (self.nodes * self.threads_per_node).max(1)
    }
}

impl OfflineBackend for MahoutLikeBackend {
    fn compute(
        &self,
        profiles: &[(UserId, SharedProfile)],
        k: usize,
    ) -> Vec<(UserId, Neighborhood)> {
        if profiles.is_empty() {
            return Vec::new();
        }
        let index: HashMap<UserId, u32> = profiles
            .iter()
            .enumerate()
            .map(|(i, (u, _))| (*u, i as u32))
            .collect();

        // Stage 1: invert profiles into postings (item -> user indices),
        // capped per item the way Mahout samples preferences.
        let mut postings: HashMap<u32, Vec<u32>> = HashMap::new();
        for (uidx, (_, profile)) in profiles.iter().enumerate() {
            for item in profile.liked() {
                let posting = postings.entry(item.raw()).or_default();
                if posting.len() < self.max_prefs_per_item {
                    posting.push(uidx as u32);
                }
            }
        }

        // Shuffle: materialize postings to bytes and parse them back —
        // the inter-stage serialization Hadoop actually pays for.
        let blob = serialize_postings(&postings);
        let postings = parse_postings(&blob);

        // Stages 2+3: per user, accumulate co-counts then reduce to top-k.
        let results = parallel_chunks(profiles, self.workers(), |(user, profile)| {
            let my_len = profile.liked_len();
            if my_len == 0 {
                return (*user, Neighborhood::new());
            }
            let me = index[user];
            let mut counts: HashMap<u32, u32> = HashMap::new();
            for item in profile.liked() {
                if let Some(posting) = postings.get(&item.raw()) {
                    for &v in posting {
                        if v != me {
                            *counts.entry(v).or_insert(0) += 1;
                        }
                    }
                }
            }
            let mut top = TopK::new(k);
            for (v, co) in counts {
                let other_len = profiles[v as usize].1.liked_len();
                let sim = f64::from(co) / ((my_len as f64) * (other_len as f64)).sqrt();
                top.push(v, sim);
            }
            let hood = Neighborhood::from_neighbors(top.into_sorted_vec().into_iter().map(
                |(v, similarity)| Neighbor {
                    user: profiles[v as usize].0,
                    similarity,
                },
            ));
            (*user, hood)
        });
        results
    }

    fn name(&self) -> &'static str {
        if self.nodes > 1 {
            "clus-mahout"
        } else {
            "mahout-single"
        }
    }
}

/// Length-prefixed binary encoding of postings (the shuffle payload).
fn serialize_postings(postings: &HashMap<u32, Vec<u32>>) -> Vec<u8> {
    let mut blob = Vec::new();
    for (item, users) in postings {
        blob.extend_from_slice(&item.to_le_bytes());
        blob.extend_from_slice(&(users.len() as u32).to_le_bytes());
        for &u in users {
            blob.extend_from_slice(&u.to_le_bytes());
        }
    }
    blob
}

fn parse_postings(blob: &[u8]) -> HashMap<u32, Vec<u32>> {
    let mut postings = HashMap::new();
    let mut pos = 0usize;
    let read_u32 = |pos: &mut usize| {
        let v = u32::from_le_bytes(blob[*pos..*pos + 4].try_into().expect("aligned"));
        *pos += 4;
        v
    };
    while pos < blob.len() {
        let item = read_u32(&mut pos);
        let len = read_u32(&mut pos) as usize;
        let users = (0..len).map(|_| read_u32(&mut pos)).collect();
        postings.insert(item, users);
    }
    postings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::ExhaustiveBackend;
    use hyrec_core::Profile;

    fn clustered_profiles(clusters: u32, per_cluster: u32) -> Vec<(UserId, SharedProfile)> {
        (0..clusters * per_cluster)
            .map(|u| {
                let cluster = u % clusters;
                let profile =
                    Profile::from_liked((0..8u32).map(|i| cluster * 100 + i).collect::<Vec<_>>());
                (UserId(u), SharedProfile::new(profile))
            })
            .collect()
    }

    #[test]
    fn matches_exhaustive_exactly_when_uncapped() {
        let profiles = clustered_profiles(3, 8);
        let k = 5;
        let exact = ExhaustiveBackend::new(2).compute(&profiles, k);
        let backend = MahoutLikeBackend {
            max_prefs_per_item: usize::MAX,
            ..Default::default()
        };
        let mahout = backend.compute(&profiles, k);

        for ((ua, ha), (ub, hb)) in exact.iter().zip(mahout.iter()) {
            assert_eq!(ua, ub);
            // View similarities must agree; identities can differ on ties.
            assert!(
                (ha.view_similarity() - hb.view_similarity()).abs() < 1e-9,
                "user {ua}: {} vs {}",
                ha.view_similarity(),
                hb.view_similarity()
            );
        }
    }

    #[test]
    fn cluster_variant_matches_single_results() {
        let profiles = clustered_profiles(2, 10);
        let single = MahoutLikeBackend::single().compute(&profiles, 4);
        let cluster = MahoutLikeBackend::cluster().compute(&profiles, 4);
        for ((_, ha), (_, hb)) in single.iter().zip(cluster.iter()) {
            assert!((ha.view_similarity() - hb.view_similarity()).abs() < 1e-9);
        }
    }

    #[test]
    fn capping_degrades_gracefully() {
        let profiles = clustered_profiles(2, 30);
        let capped = MahoutLikeBackend {
            max_prefs_per_item: 5,
            ..Default::default()
        };
        let table = capped.compute(&profiles, 4);
        assert_eq!(table.len(), 60);
        // Quality is reduced but neighbourhoods still get filled from the
        // capped postings.
        let avg = table.iter().map(|(_, h)| h.view_similarity()).sum::<f64>() / 60.0;
        assert!(avg > 0.0);
    }

    #[test]
    fn shuffle_round_trips() {
        let mut postings = HashMap::new();
        postings.insert(3u32, vec![1, 2, 3]);
        postings.insert(9u32, vec![]);
        postings.insert(1u32, vec![42]);
        let blob = serialize_postings(&postings);
        assert_eq!(parse_postings(&blob), postings);
    }

    #[test]
    fn names_and_empty_input() {
        assert_eq!(MahoutLikeBackend::single().name(), "mahout-single");
        assert_eq!(MahoutLikeBackend::cluster().name(), "clus-mahout");
        assert!(MahoutLikeBackend::single().compute(&[], 3).is_empty());
    }

    #[test]
    fn empty_profiles_get_empty_neighborhoods() {
        let mut profiles = clustered_profiles(1, 3);
        profiles.push((UserId(99), SharedProfile::new(Profile::new())));
        let table = MahoutLikeBackend::single().compute(&profiles, 2);
        let (u, hood) = table.last().unwrap();
        assert_eq!(*u, UserId(99));
        assert!(hood.is_empty());
    }
}
