//! # hyrec-server
//!
//! The server half of HyRec's hybrid architecture (Section 3.1 of the paper)
//! plus every centralized baseline the evaluation compares against.
//!
//! The HyRec server does two things and *only* two things — the whole point
//! of the design is that the expensive per-user computation happens in
//! browsers:
//!
//! 1. **Orchestration** ([`HyRecServer`]): on each user request it assembles
//!    a *personalization job* — the user's profile plus a candidate set
//!    sampled by the [`sampler::Sampler`] (current KNN ∪ 2-hop KNN ∪ `k`
//!    random users) — ships it to the widget, and writes the returned KNN
//!    selection back into the global tables.
//! 2. **Global state** ([`hyrec_core::ProfileTable`], [`hyrec_core::KnnTable`])
//!    behind sharded locks, with an epoch-based [`anonymize::AnonymousMapping`]
//!    hiding user/profile associations from clients.
//!
//! Baselines (Section 5 competitors):
//!
//! * [`crec::CRecFrontEnd`] — the centralized front-end that computes item
//!   recommendations server-side from a precomputed KNN table.
//! * [`offline::ExhaustiveBackend`] — *Offline-Ideal*: periodic all-pairs
//!   KNN.
//! * [`offline::CRecBackend`] — *Offline-CRec*: the same sampling algorithm
//!   as HyRec but run as synchronous map-reduce rounds on the back-end.
//! * [`offline::MahoutLikeBackend`] — a Mahout-on-Hadoop stand-in: exact
//!   inverted-index KNN with a configurable node count and per-stage job
//!   overhead.
//! * [`online_ideal::OnlineIdeal`] — brute-force KNN on every request (the
//!   quality upper bound of Figures 3 and 6).
//!
//! ```
//! use hyrec_client::Widget;
//! use hyrec_core::{ItemId, UserId, Vote};
//! use hyrec_server::HyRecServer;
//!
//! let server = HyRecServer::builder().k(3).r(5).seed(7).build();
//! let widget = Widget::new();
//!
//! // A few users rate overlapping items…
//! for u in 0..10u32 {
//!     for i in 0..6u32 {
//!         server.record(UserId(u), ItemId(u % 3 + i), Vote::Like);
//!     }
//! }
//! // …then one of them requests recommendations: job -> widget -> update.
//! let job = server.build_job(UserId(0));
//! let output = widget.run_job(&job);
//! server.apply_update(&output.update);
//! assert!(server.knn_of(UserId(0)).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anonymize;
pub mod config;
pub mod crec;
pub mod encoder;
pub mod offline;
pub mod online_ideal;
pub mod sampler;
pub mod scheduled;
pub mod server;

pub use config::{HyRecConfig, HyRecConfigBuilder};
pub use crec::CRecFrontEnd;
pub use encoder::JobEncoder;
pub use offline::{CRecBackend, ExhaustiveBackend, MahoutLikeBackend, OfflineBackend};
pub use online_ideal::OnlineIdeal;
pub use sampler::{DefaultSampler, NoRandomSampler, RandomOnlySampler, Sampler};
pub use scheduled::{ScheduledServer, SweeperHandle};
pub use server::HyRecServer;
