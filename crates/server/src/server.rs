//! The HyRec server: global tables + sampler + personalization orchestrator.

use crate::anonymize::AnonymousMapping;
use crate::config::HyRecConfig;
use crate::sampler::{DefaultSampler, Sampler, SamplerContext, UserDirectory};
use hyrec_core::{
    CandidateSet, ItemId, KnnTable, Neighborhood, Profile, ProfileTable, UserId, Vote,
};
use hyrec_wire::{KnnUpdate, PersonalizationJob};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The HyRec server (Figure 1, bottom): orchestrates browser-side
/// personalization while owning the global Profile and KNN tables.
///
/// All methods take `&self`; the server is meant to be shared across request
/// threads (`Arc<HyRecServer>` in the HTTP front-end).
///
/// ```
/// use hyrec_core::{ItemId, UserId, Vote};
/// use hyrec_server::HyRecServer;
/// use hyrec_client::Widget;
///
/// let server = HyRecServer::new();
/// server.record(UserId(1), ItemId(10), Vote::Like);
/// server.record(UserId(2), ItemId(10), Vote::Like);
///
/// // One full HyRec interaction (arrows 1-3 of Figure 1):
/// let job = server.build_job(UserId(1));
/// let out = Widget::new().run_job(&job);
/// server.apply_update(&out.update);
/// ```
pub struct HyRecServer {
    config: HyRecConfig,
    profiles: ProfileTable,
    knn: KnnTable,
    directory: UserDirectory,
    sampler: Box<dyn Sampler>,
    anonymizer: Mutex<AnonymousMapping>,
    rng: Mutex<StdRng>,
    requests_served: AtomicU64,
    updates_applied: AtomicU64,
}

impl std::fmt::Debug for HyRecServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HyRecServer")
            .field("config", &self.config)
            .field("users", &self.directory.len())
            .field("sampler", &self.sampler.name())
            .finish()
    }
}

impl Default for HyRecServer {
    fn default() -> Self {
        Self::new()
    }
}

impl HyRecServer {
    /// Creates a server with the paper's default configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(HyRecConfig::default())
    }

    /// Creates a server from a configuration.
    #[must_use]
    pub fn with_config(config: HyRecConfig) -> Self {
        Self::with_sampler(config, DefaultSampler)
    }

    /// Creates a server with a custom sampling strategy (Table 1's
    /// `Sampler` interface).
    #[must_use]
    pub fn with_sampler(config: HyRecConfig, sampler: impl Sampler + 'static) -> Self {
        let seed = config.seed;
        Self {
            config,
            profiles: ProfileTable::new(),
            knn: KnnTable::new(),
            directory: UserDirectory::new(),
            sampler: Box::new(sampler),
            anonymizer: Mutex::new(AnonymousMapping::new(seed ^ 0xA11CE)),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            requests_served: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
        }
    }

    /// Shorthand for `HyRecConfig::builder()` + `HyRecServer::with_config`.
    #[must_use]
    pub fn builder() -> ServerBuilder {
        ServerBuilder {
            config: HyRecConfig::builder(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &HyRecConfig {
        &self.config
    }

    /// Records a rating into the user's profile (arrow 1 of Figure 1: the
    /// server "first updates u's profile in its global data structure").
    ///
    /// Returns `true` when the vote changed the profile.
    pub fn record(&self, user: UserId, item: ItemId, vote: Vote) -> bool {
        if !self.profiles.contains(user) {
            self.directory.register(user);
        }
        self.profiles.record(user, item, vote)
    }

    /// Batched [`Self::record`]: ingests a burst of votes through
    /// [`ProfileTable::record_many`], which takes each touched shard's write
    /// lock once for the whole batch instead of once per vote.
    ///
    /// Semantically identical to `votes.iter().map(|&(u, i, v)|
    /// self.record(u, i, v))`: change flags come back in input order and new
    /// users are registered in first-occurrence order, so the user directory
    /// (which feeds the sampler's random leg) ends up byte-identical to the
    /// sequential path. This is the ingestion entry point for coalescing
    /// front-ends staging `/rate/` traffic.
    #[must_use]
    pub fn record_many(&self, votes: &[(UserId, ItemId, Vote)]) -> Vec<bool> {
        let mut seen = hyrec_core::FastHashSet::default();
        for &(user, _, _) in votes {
            if seen.insert(user) && !self.profiles.contains(user) {
                self.directory.register(user);
            }
        }
        self.profiles.record_many(votes)
    }

    /// Number of users known to the server.
    #[must_use]
    pub fn user_count(&self) -> usize {
        self.directory.len()
    }

    /// Shared handle to a user's profile, if any.
    #[must_use]
    pub fn profile_of(&self, user: UserId) -> Option<Arc<Profile>> {
        self.profiles.get(user)
    }

    /// Clone of a user's current KNN approximation, if any.
    #[must_use]
    pub fn knn_of(&self, user: UserId) -> Option<Neighborhood> {
        self.knn.get(user)
    }

    /// Direct read access to the profile table (offline back-ends, metrics).
    #[must_use]
    pub fn profiles(&self) -> &ProfileTable {
        &self.profiles
    }

    /// Direct read access to the KNN table (metrics).
    #[must_use]
    pub fn knn_table(&self) -> &KnnTable {
        &self.knn
    }

    /// Average view similarity across the KNN table (Figures 3–4).
    #[must_use]
    pub fn average_view_similarity(&self) -> f64 {
        self.knn.average_view_similarity()
    }

    /// Builds the personalization job for `user` (arrow 2 of Figure 1).
    ///
    /// The sampler assembles the candidate set; candidate user ids are
    /// pseudonymized under the current anonymization epoch when the config
    /// says so. An unknown user receives an empty profile and whatever the
    /// random leg of the sampler provides — exactly how cold-start behaves
    /// in the paper (new users start with random neighbours).
    #[must_use]
    pub fn build_job(&self, user: UserId) -> PersonalizationJob {
        self.requests_served.fetch_add(1, Ordering::Relaxed);
        let ctx = SamplerContext {
            profiles: &self.profiles,
            knn: &self.knn,
            directory: &self.directory,
        };
        let candidates = {
            let mut rng = self.rng.lock();
            self.sampler.sample(
                user,
                self.config.k,
                self.config.random_candidates,
                &ctx,
                &mut rng,
            )
        };

        let profile = Self::capped(
            self.profiles.get(user).unwrap_or_default(),
            self.config.profile_cap,
        );
        let candidates = self.finalize_candidates(candidates);
        PersonalizationJob {
            uid: user,
            k: self.config.k,
            r: self.config.r,
            lease: 0,
            epoch: 0,
            profile,
            candidates,
        }
    }

    /// Applies the optional profile cap to a shared handle.
    ///
    /// Uncapped (the default) or already-small profiles pass through as the
    /// same `Arc` — no copy. Only an over-cap profile is cloned, because
    /// truncation must not mutate the table's stored profile.
    fn capped(profile: Arc<Profile>, cap: Option<usize>) -> Arc<Profile> {
        match cap {
            Some(cap) if profile.liked_len() > cap => {
                let mut owned = (*profile).clone();
                owned.truncate_liked(cap);
                Arc::new(owned)
            }
            _ => profile,
        }
    }

    /// Applies profile capping and pseudonymization to a raw candidate set.
    fn finalize_candidates(&self, raw: CandidateSet) -> CandidateSet {
        if !self.config.anonymize_users && self.config.profile_cap.is_none() {
            return raw;
        }
        let mut anonymizer = self.anonymizer.lock();
        self.finalize_with(raw, &mut anonymizer)
    }

    /// [`Self::finalize_candidates`] with the anonymizer lock already held —
    /// the batch path locks once for all jobs.
    fn finalize_with(&self, raw: CandidateSet, anonymizer: &mut AnonymousMapping) -> CandidateSet {
        let cap = self.config.profile_cap;
        // Pseudonymization is injective within an epoch and capping keeps
        // user ids untouched, so the input's uniqueness survives and the
        // output set needs no re-hashed dedup index.
        let members = raw
            .into_vec()
            .into_iter()
            .map(|c| {
                let profile = Self::capped(c.profile, cap);
                let user = if self.config.anonymize_users {
                    anonymizer.pseudonymize(c.user)
                } else {
                    c.user
                };
                hyrec_core::CandidateProfile { user, profile }
            })
            .collect();
        CandidateSet::from_deduped(members)
    }

    /// Builds personalization jobs for a whole batch of users.
    ///
    /// Semantically identical to `users.iter().map(|&u| self.build_job(u))`
    /// — same candidate sets, same RNG stream, same pseudonyms — but the
    /// table traffic is amortized: the sampler stages its reads through the
    /// tables' `get_many` operations (one lock acquisition per touched
    /// shard per stage instead of one per user per candidate), requester
    /// profiles are fetched in one sweep, and the RNG and anonymizer locks
    /// are taken once per batch instead of once per job. This is the entry
    /// point for request coalescing front-ends and for the simulation
    /// harnesses that drive thousands of users per tick.
    #[must_use]
    pub fn build_jobs(&self, users: &[UserId]) -> Vec<PersonalizationJob> {
        self.requests_served
            .fetch_add(users.len() as u64, Ordering::Relaxed);
        let ctx = SamplerContext {
            profiles: &self.profiles,
            knn: &self.knn,
            directory: &self.directory,
        };
        let candidate_sets = {
            let mut rng = self.rng.lock();
            self.sampler.sample_batch(
                users,
                self.config.k,
                self.config.random_candidates,
                &ctx,
                &mut rng,
            )
        };

        let profiles = self.profiles.get_many(users);
        let finalized: Vec<CandidateSet> =
            if self.config.anonymize_users || self.config.profile_cap.is_some() {
                let mut anonymizer = self.anonymizer.lock();
                candidate_sets
                    .into_iter()
                    .map(|set| self.finalize_with(set, &mut anonymizer))
                    .collect()
            } else {
                candidate_sets
            };

        users
            .iter()
            .zip(profiles)
            .zip(finalized)
            .map(|((&user, profile), candidates)| PersonalizationJob {
                uid: user,
                k: self.config.k,
                r: self.config.r,
                lease: 0,
                epoch: 0,
                profile: Self::capped(profile.unwrap_or_default(), self.config.profile_cap),
                candidates,
            })
            .collect()
    }

    /// Applies a KNN update sent back by a widget (arrow 3 of Figure 1).
    ///
    /// Pseudonymous neighbour ids are resolved through the anonymous
    /// mapping; pseudonyms from epochs older than one reshuffle are dropped
    /// (the widget will simply refine again on its next request).
    pub fn apply_update(&self, update: &KnnUpdate) {
        self.updates_applied.fetch_add(1, Ordering::Relaxed);
        let hood = if self.config.anonymize_users {
            let anonymizer = self.anonymizer.lock();
            Neighborhood::from_neighbors(update.neighbors.iter().filter_map(|n| {
                anonymizer.resolve(n.user).map(|real| hyrec_core::Neighbor {
                    user: real,
                    similarity: n.similarity,
                })
            }))
        } else {
            update.to_neighborhood()
        };
        self.knn.update(update.uid, hood);
    }

    /// Applies a batch of KNN updates.
    ///
    /// Semantically identical to `updates.iter().for_each(|u|
    /// self.apply_update(u))`, but the anonymizer lock is taken once and the
    /// KNN write-backs go through `KnnTable::update_many`, which takes each
    /// touched shard's write lock once for the whole batch.
    pub fn apply_updates(&self, updates: &[KnnUpdate]) {
        self.updates_applied
            .fetch_add(updates.len() as u64, Ordering::Relaxed);
        let entries: Vec<(UserId, Neighborhood)> = if self.config.anonymize_users {
            let anonymizer = self.anonymizer.lock();
            updates
                .iter()
                .map(|update| {
                    let hood =
                        Neighborhood::from_neighbors(update.neighbors.iter().filter_map(|n| {
                            anonymizer.resolve(n.user).map(|real| hyrec_core::Neighbor {
                                user: real,
                                similarity: n.similarity,
                            })
                        }));
                    (update.uid, hood)
                })
                .collect()
        } else {
            updates
                .iter()
                .map(|update| (update.uid, update.to_neighborhood()))
                .collect()
        };
        self.knn.update_many(entries);
    }

    /// Whether a neighbour id reported in a `KnnUpdate` is resolvable by
    /// this server: under pseudonymization the id must resolve through a
    /// live anonymization epoch; otherwise the user must own a profile.
    ///
    /// This is the `known` predicate the job-lifecycle scheduler's update
    /// validation uses to reject fabricated neighbour ids before they
    /// reach the KNN table.
    #[must_use]
    pub fn neighbor_known(&self, user: UserId) -> bool {
        self.with_neighbor_checker(|known| known(user))
    }

    /// Runs `f` with a neighbour-resolvability predicate, taking the
    /// anonymizer lock **once** for the whole closure — the batched form
    /// of [`Self::neighbor_known`] for validating bursts of completions.
    pub fn with_neighbor_checker<R>(
        &self,
        f: impl FnOnce(&mut dyn FnMut(UserId) -> bool) -> R,
    ) -> R {
        if self.config.anonymize_users {
            let anonymizer = self.anonymizer.lock();
            let mut known = |user: UserId| anonymizer.resolve(user).is_some();
            f(&mut known)
        } else {
            let mut known = |user: UserId| self.profiles.contains(user);
            f(&mut known)
        }
    }

    /// Rotates the anonymization epoch ("periodically, the identifiers …
    /// are anonymously shuffled"). Call on a timer in deployments; the
    /// simulator calls it per simulated epoch.
    pub fn rotate_pseudonyms(&self) {
        self.anonymizer.lock().reshuffle();
    }

    /// Number of personalization jobs built so far.
    #[must_use]
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Number of KNN updates applied so far.
    #[must_use]
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied.load(Ordering::Relaxed)
    }
}

/// Builder wiring [`HyRecConfig`] straight into a server.
#[derive(Debug)]
pub struct ServerBuilder {
    config: crate::config::HyRecConfigBuilder,
}

impl ServerBuilder {
    /// Sets the neighbourhood size `k`.
    #[must_use]
    pub fn k(mut self, k: usize) -> Self {
        self.config = self.config.k(k);
        self
    }

    /// Sets the recommendation list size `r`.
    #[must_use]
    pub fn r(mut self, r: usize) -> Self {
        self.config = self.config.r(r);
        self
    }

    /// Enables or disables pseudonymization.
    #[must_use]
    pub fn anonymize_users(mut self, on: bool) -> Self {
        self.config = self.config.anonymize_users(on);
        self
    }

    /// Caps profile sizes in jobs.
    #[must_use]
    pub fn profile_cap(mut self, cap: usize) -> Self {
        self.config = self.config.profile_cap(cap);
        self
    }

    /// Seeds the sampler RNG.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config = self.config.seed(seed);
        self
    }

    /// Builds the server.
    #[must_use]
    pub fn build(self) -> HyRecServer {
        HyRecServer::with_config(self.config.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrec_client::Widget;

    fn populated_server(anonymize: bool) -> HyRecServer {
        let server = HyRecServer::with_config(
            HyRecConfig::builder()
                .k(3)
                .r(5)
                .anonymize_users(anonymize)
                .seed(9)
                .build(),
        );
        // Three taste groups of users.
        for u in 0..30u32 {
            let base = (u % 3) * 100;
            for i in 0..8u32 {
                server.record(UserId(u), ItemId(base + i), Vote::Like);
            }
        }
        server
    }

    fn converge(server: &HyRecServer, widget: &Widget, rounds: usize) {
        for _ in 0..rounds {
            for u in 0..30u32 {
                let job = server.build_job(UserId(u));
                let out = widget.run_job(&job);
                server.apply_update(&out.update);
            }
        }
    }

    #[test]
    fn full_loop_converges_to_taste_groups() {
        let server = populated_server(false);
        let widget = Widget::new();
        converge(&server, &widget, 5);

        // After a few gossip rounds every user's KNN is within their group.
        for u in 0..30u32 {
            let hood = server.knn_of(UserId(u)).expect("knn exists");
            assert!(!hood.is_empty());
            for n in hood.iter() {
                assert_eq!(
                    n.user.0 % 3,
                    u % 3,
                    "u{u} has out-of-group neighbour {}",
                    n.user
                );
                assert!((n.similarity - 1.0).abs() < 1e-9);
            }
        }
        assert!(server.average_view_similarity() > 0.99);
    }

    #[test]
    fn anonymized_loop_converges_identically() {
        let server = populated_server(true);
        let widget = Widget::new();
        converge(&server, &widget, 5);
        assert!(server.average_view_similarity() > 0.99);
        // And the KNN table holds *real* ids, not pseudonyms.
        for u in 0..30u32 {
            let hood = server.knn_of(UserId(u)).unwrap();
            for n in hood.iter() {
                assert!(n.user.0 < 30, "pseudonym leaked into KNN table: {}", n.user);
            }
        }
    }

    #[test]
    fn jobs_never_leak_real_candidate_ids_when_anonymized() {
        let server = populated_server(true);
        let widget = Widget::new();
        converge(&server, &widget, 2);
        let job = server.build_job(UserId(0));
        for c in job.candidates.iter() {
            assert!(c.user.0 >= 30, "real id {} leaked into job", c.user);
        }
    }

    #[test]
    fn updates_across_one_reshuffle_still_resolve() {
        let server = populated_server(true);
        let widget = Widget::new();
        let job = server.build_job(UserId(0));
        server.rotate_pseudonyms();
        let out = widget.run_job(&job);
        server.apply_update(&out.update);
        let hood = server.knn_of(UserId(0)).unwrap();
        assert!(!hood.is_empty(), "one-epoch-old pseudonyms must resolve");
    }

    #[test]
    fn updates_across_two_reshuffles_are_dropped() {
        let server = populated_server(true);
        let widget = Widget::new();
        let job = server.build_job(UserId(0));
        server.rotate_pseudonyms();
        server.rotate_pseudonyms();
        let out = widget.run_job(&job);
        server.apply_update(&out.update);
        let hood = server.knn_of(UserId(0)).unwrap();
        assert!(hood.is_empty(), "stale pseudonyms must not resolve");
    }

    #[test]
    fn cold_start_user_gets_bootstrap_job() {
        let server = populated_server(false);
        let job = server.build_job(UserId(999));
        assert!(job.profile.is_empty());
        assert!(!job.candidates.is_empty(), "random leg must bootstrap");
        assert!(!job.candidates.contains(UserId(999)));
    }

    #[test]
    fn profile_cap_bounds_job_sizes() {
        let server =
            HyRecServer::with_config(HyRecConfig::builder().k(2).profile_cap(3).seed(1).build());
        for u in 0..5u32 {
            for i in 0..50u32 {
                server.record(UserId(u), ItemId(i), Vote::Like);
            }
        }
        let job = server.build_job(UserId(0));
        assert!(job.profile.liked_len() <= 3);
        for c in job.candidates.iter() {
            assert!(c.profile.liked_len() <= 3);
        }
    }

    #[test]
    fn counters_track_activity() {
        let server = populated_server(false);
        let widget = Widget::new();
        let job = server.build_job(UserId(1));
        let out = widget.run_job(&job);
        server.apply_update(&out.update);
        assert_eq!(server.requests_served(), 1);
        assert_eq!(server.updates_applied(), 1);
        assert_eq!(server.user_count(), 30);
    }

    #[test]
    fn build_job_shares_table_profiles_without_copying() {
        // The zero-copy contract: with no cap and no pseudonymization, every
        // profile in a job IS the table's allocation (same Arc), not a copy.
        let server = HyRecServer::with_config(
            HyRecConfig::builder()
                .k(3)
                .anonymize_users(false)
                .seed(4)
                .build(),
        );
        for u in 0..20u32 {
            for i in 0..10u32 {
                server.record(UserId(u), ItemId(i % 7), Vote::Like);
            }
        }
        let job = server.build_job(UserId(0));
        assert!(!job.candidates.is_empty());
        let table_own = server.profile_of(UserId(0)).unwrap();
        assert!(
            Arc::ptr_eq(&job.profile, &table_own),
            "requester profile copied"
        );
        for c in job.candidates.iter() {
            let stored = server.profile_of(c.user).expect("candidate has profile");
            assert!(
                Arc::ptr_eq(&c.profile, &stored),
                "candidate {} copied",
                c.user
            );
        }
    }

    #[test]
    fn build_jobs_matches_sequential_build_job() {
        // Two identically seeded servers: a batched request stream must
        // produce byte-identical jobs to the sequential one.
        let batch_server = populated_server(false);
        let seq_server = populated_server(false);
        let users: Vec<UserId> = (0..30u32).map(UserId).collect();

        // Round 1 (cold tables), then warm both and compare again.
        let widget = Widget::new();
        for round in 0..3 {
            let batch = batch_server.build_jobs(&users);
            let sequential: Vec<_> = users.iter().map(|&u| seq_server.build_job(u)).collect();
            assert_eq!(batch, sequential, "divergence at round {round}");

            let updates: Vec<_> = batch.iter().map(|job| widget.run_job(job).update).collect();
            batch_server.apply_updates(&updates);
            for update in &updates {
                seq_server.apply_update(update);
            }
        }
        assert_eq!(
            batch_server.average_view_similarity(),
            seq_server.average_view_similarity()
        );
        assert_eq!(batch_server.requests_served(), seq_server.requests_served());
        assert_eq!(batch_server.updates_applied(), seq_server.updates_applied());
    }

    #[test]
    fn batched_pipeline_converges_with_anonymization() {
        let server = populated_server(true);
        let widget = Widget::new();
        let users: Vec<UserId> = (0..30u32).map(UserId).collect();
        for _ in 0..5 {
            let jobs = server.build_jobs(&users);
            let updates: Vec<_> = jobs.iter().map(|j| widget.run_job(j).update).collect();
            server.apply_updates(&updates);
        }
        assert!(server.average_view_similarity() > 0.99);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let server = populated_server(false);
        assert!(server.build_jobs(&[]).is_empty());
        server.apply_updates(&[]);
        assert_eq!(server.requests_served(), 0);
        assert_eq!(server.updates_applied(), 0);
    }

    #[test]
    fn record_many_matches_sequential_record() {
        let batched = HyRecServer::with_config(HyRecConfig::builder().k(3).seed(21).build());
        let sequential = HyRecServer::with_config(HyRecConfig::builder().k(3).seed(21).build());
        let votes: Vec<(UserId, ItemId, Vote)> = (0..300u32)
            .map(|i| {
                let vote = if i % 4 == 0 {
                    Vote::Dislike
                } else {
                    Vote::Like
                };
                (UserId(i % 23), ItemId(i % 9), vote)
            })
            .collect();
        let batch_flags = batched.record_many(&votes);
        let seq_flags: Vec<bool> = votes
            .iter()
            .map(|&(user, item, vote)| sequential.record(user, item, vote))
            .collect();
        assert_eq!(batch_flags, seq_flags);
        assert_eq!(batched.user_count(), sequential.user_count());
        // Directory registration order matters for the random sampler leg:
        // identically-seeded servers must build identical jobs afterwards.
        let users: Vec<UserId> = (0..23u32).map(UserId).collect();
        for &user in &users {
            assert_eq!(batched.build_job(user), sequential.build_job(user));
        }
    }

    #[test]
    fn record_returns_change_flag() {
        let server = HyRecServer::new();
        assert!(server.record(UserId(1), ItemId(1), Vote::Like));
        assert!(!server.record(UserId(1), ItemId(1), Vote::Like));
        assert!(server.record(UserId(1), ItemId(1), Vote::Dislike));
    }
}
