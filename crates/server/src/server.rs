//! The HyRec server: global tables + sampler + personalization orchestrator.

use crate::anonymize::AnonymousMapping;
use crate::config::HyRecConfig;
use crate::sampler::{DefaultSampler, Sampler, SamplerContext, UserDirectory};
use hyrec_core::{
    CandidateSet, ItemId, KnnTable, Neighborhood, Profile, ProfileTable, UserId, Vote,
};
use hyrec_wire::{KnnUpdate, PersonalizationJob};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};

/// The HyRec server (Figure 1, bottom): orchestrates browser-side
/// personalization while owning the global Profile and KNN tables.
///
/// All methods take `&self`; the server is meant to be shared across request
/// threads (`Arc<HyRecServer>` in the HTTP front-end).
///
/// ```
/// use hyrec_core::{ItemId, UserId, Vote};
/// use hyrec_server::HyRecServer;
/// use hyrec_client::Widget;
///
/// let server = HyRecServer::new();
/// server.record(UserId(1), ItemId(10), Vote::Like);
/// server.record(UserId(2), ItemId(10), Vote::Like);
///
/// // One full HyRec interaction (arrows 1-3 of Figure 1):
/// let job = server.build_job(UserId(1));
/// let out = Widget::new().run_job(&job);
/// server.apply_update(&out.update);
/// ```
pub struct HyRecServer {
    config: HyRecConfig,
    profiles: ProfileTable,
    knn: KnnTable,
    directory: UserDirectory,
    sampler: Box<dyn Sampler>,
    anonymizer: Mutex<AnonymousMapping>,
    rng: Mutex<StdRng>,
    requests_served: AtomicU64,
    updates_applied: AtomicU64,
}

impl std::fmt::Debug for HyRecServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HyRecServer")
            .field("config", &self.config)
            .field("users", &self.directory.len())
            .field("sampler", &self.sampler.name())
            .finish()
    }
}

impl Default for HyRecServer {
    fn default() -> Self {
        Self::new()
    }
}

impl HyRecServer {
    /// Creates a server with the paper's default configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(HyRecConfig::default())
    }

    /// Creates a server from a configuration.
    #[must_use]
    pub fn with_config(config: HyRecConfig) -> Self {
        Self::with_sampler(config, DefaultSampler)
    }

    /// Creates a server with a custom sampling strategy (Table 1's
    /// `Sampler` interface).
    #[must_use]
    pub fn with_sampler(config: HyRecConfig, sampler: impl Sampler + 'static) -> Self {
        let seed = config.seed;
        Self {
            config,
            profiles: ProfileTable::new(),
            knn: KnnTable::new(),
            directory: UserDirectory::new(),
            sampler: Box::new(sampler),
            anonymizer: Mutex::new(AnonymousMapping::new(seed ^ 0xA11CE)),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            requests_served: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
        }
    }

    /// Shorthand for `HyRecConfig::builder()` + `HyRecServer::with_config`.
    #[must_use]
    pub fn builder() -> ServerBuilder {
        ServerBuilder { config: HyRecConfig::builder(), }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &HyRecConfig {
        &self.config
    }

    /// Records a rating into the user's profile (arrow 1 of Figure 1: the
    /// server "first updates u's profile in its global data structure").
    ///
    /// Returns `true` when the vote changed the profile.
    pub fn record(&self, user: UserId, item: ItemId, vote: Vote) -> bool {
        if !self.profiles.contains(user) {
            self.directory.register(user);
        }
        self.profiles.record(user, item, vote)
    }

    /// Number of users known to the server.
    #[must_use]
    pub fn user_count(&self) -> usize {
        self.directory.len()
    }

    /// Clone of a user's profile, if any.
    #[must_use]
    pub fn profile_of(&self, user: UserId) -> Option<Profile> {
        self.profiles.get(user)
    }

    /// Clone of a user's current KNN approximation, if any.
    #[must_use]
    pub fn knn_of(&self, user: UserId) -> Option<Neighborhood> {
        self.knn.get(user)
    }

    /// Direct read access to the profile table (offline back-ends, metrics).
    #[must_use]
    pub fn profiles(&self) -> &ProfileTable {
        &self.profiles
    }

    /// Direct read access to the KNN table (metrics).
    #[must_use]
    pub fn knn_table(&self) -> &KnnTable {
        &self.knn
    }

    /// Average view similarity across the KNN table (Figures 3–4).
    #[must_use]
    pub fn average_view_similarity(&self) -> f64 {
        self.knn.average_view_similarity()
    }

    /// Builds the personalization job for `user` (arrow 2 of Figure 1).
    ///
    /// The sampler assembles the candidate set; candidate user ids are
    /// pseudonymized under the current anonymization epoch when the config
    /// says so. An unknown user receives an empty profile and whatever the
    /// random leg of the sampler provides — exactly how cold-start behaves
    /// in the paper (new users start with random neighbours).
    #[must_use]
    pub fn build_job(&self, user: UserId) -> PersonalizationJob {
        self.requests_served.fetch_add(1, Ordering::Relaxed);
        let ctx = SamplerContext {
            profiles: &self.profiles,
            knn: &self.knn,
            directory: &self.directory,
        };
        let candidates = {
            let mut rng = self.rng.lock();
            self.sampler.sample(
                user,
                self.config.k,
                self.config.random_candidates,
                &ctx,
                &mut rng,
            )
        };

        let mut profile = self.profiles.get(user).unwrap_or_default();
        let candidates = self.finalize_candidates(candidates);
        if let Some(cap) = self.config.profile_cap {
            profile.truncate_liked(cap);
        }
        PersonalizationJob {
            uid: user,
            k: self.config.k,
            r: self.config.r,
            profile,
            candidates,
        }
    }

    /// Applies profile capping and pseudonymization to a raw candidate set.
    fn finalize_candidates(&self, raw: CandidateSet) -> CandidateSet {
        let cap = self.config.profile_cap;
        if !self.config.anonymize_users && cap.is_none() {
            return raw;
        }
        let mut anonymizer = self.anonymizer.lock();
        raw.into_vec()
            .into_iter()
            .map(|mut c| {
                if let Some(cap) = cap {
                    c.profile.truncate_liked(cap);
                }
                let user = if self.config.anonymize_users {
                    anonymizer.pseudonymize(c.user)
                } else {
                    c.user
                };
                (user, c.profile)
            })
            .collect()
    }

    /// Applies a KNN update sent back by a widget (arrow 3 of Figure 1).
    ///
    /// Pseudonymous neighbour ids are resolved through the anonymous
    /// mapping; pseudonyms from epochs older than one reshuffle are dropped
    /// (the widget will simply refine again on its next request).
    pub fn apply_update(&self, update: &KnnUpdate) {
        self.updates_applied.fetch_add(1, Ordering::Relaxed);
        let hood = if self.config.anonymize_users {
            let anonymizer = self.anonymizer.lock();
            Neighborhood::from_neighbors(update.neighbors.iter().filter_map(|n| {
                anonymizer.resolve(n.user).map(|real| hyrec_core::Neighbor {
                    user: real,
                    similarity: n.similarity,
                })
            }))
        } else {
            update.to_neighborhood()
        };
        self.knn.update(update.uid, hood);
    }

    /// Rotates the anonymization epoch ("periodically, the identifiers …
    /// are anonymously shuffled"). Call on a timer in deployments; the
    /// simulator calls it per simulated epoch.
    pub fn rotate_pseudonyms(&self) {
        self.anonymizer.lock().reshuffle();
    }

    /// Number of personalization jobs built so far.
    #[must_use]
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Number of KNN updates applied so far.
    #[must_use]
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied.load(Ordering::Relaxed)
    }
}

/// Builder wiring [`HyRecConfig`] straight into a server.
#[derive(Debug)]
pub struct ServerBuilder {
    config: crate::config::HyRecConfigBuilder,
}

impl ServerBuilder {
    /// Sets the neighbourhood size `k`.
    #[must_use]
    pub fn k(mut self, k: usize) -> Self {
        self.config = self.config.k(k);
        self
    }

    /// Sets the recommendation list size `r`.
    #[must_use]
    pub fn r(mut self, r: usize) -> Self {
        self.config = self.config.r(r);
        self
    }

    /// Enables or disables pseudonymization.
    #[must_use]
    pub fn anonymize_users(mut self, on: bool) -> Self {
        self.config = self.config.anonymize_users(on);
        self
    }

    /// Caps profile sizes in jobs.
    #[must_use]
    pub fn profile_cap(mut self, cap: usize) -> Self {
        self.config = self.config.profile_cap(cap);
        self
    }

    /// Seeds the sampler RNG.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config = self.config.seed(seed);
        self
    }

    /// Builds the server.
    #[must_use]
    pub fn build(self) -> HyRecServer {
        HyRecServer::with_config(self.config.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrec_client::Widget;

    fn populated_server(anonymize: bool) -> HyRecServer {
        let server = HyRecServer::with_config(
            HyRecConfig::builder().k(3).r(5).anonymize_users(anonymize).seed(9).build(),
        );
        // Three taste groups of users.
        for u in 0..30u32 {
            let base = (u % 3) * 100;
            for i in 0..8u32 {
                server.record(UserId(u), ItemId(base + i), Vote::Like);
            }
        }
        server
    }

    fn converge(server: &HyRecServer, widget: &Widget, rounds: usize) {
        for _ in 0..rounds {
            for u in 0..30u32 {
                let job = server.build_job(UserId(u));
                let out = widget.run_job(&job);
                server.apply_update(&out.update);
            }
        }
    }

    #[test]
    fn full_loop_converges_to_taste_groups() {
        let server = populated_server(false);
        let widget = Widget::new();
        converge(&server, &widget, 5);

        // After a few gossip rounds every user's KNN is within their group.
        for u in 0..30u32 {
            let hood = server.knn_of(UserId(u)).expect("knn exists");
            assert!(!hood.is_empty());
            for n in hood.iter() {
                assert_eq!(
                    n.user.0 % 3,
                    u % 3,
                    "u{u} has out-of-group neighbour {}",
                    n.user
                );
                assert!((n.similarity - 1.0).abs() < 1e-9);
            }
        }
        assert!(server.average_view_similarity() > 0.99);
    }

    #[test]
    fn anonymized_loop_converges_identically() {
        let server = populated_server(true);
        let widget = Widget::new();
        converge(&server, &widget, 5);
        assert!(server.average_view_similarity() > 0.99);
        // And the KNN table holds *real* ids, not pseudonyms.
        for u in 0..30u32 {
            let hood = server.knn_of(UserId(u)).unwrap();
            for n in hood.iter() {
                assert!(n.user.0 < 30, "pseudonym leaked into KNN table: {}", n.user);
            }
        }
    }

    #[test]
    fn jobs_never_leak_real_candidate_ids_when_anonymized() {
        let server = populated_server(true);
        let widget = Widget::new();
        converge(&server, &widget, 2);
        let job = server.build_job(UserId(0));
        for c in job.candidates.iter() {
            assert!(c.user.0 >= 30, "real id {} leaked into job", c.user);
        }
    }

    #[test]
    fn updates_across_one_reshuffle_still_resolve() {
        let server = populated_server(true);
        let widget = Widget::new();
        let job = server.build_job(UserId(0));
        server.rotate_pseudonyms();
        let out = widget.run_job(&job);
        server.apply_update(&out.update);
        let hood = server.knn_of(UserId(0)).unwrap();
        assert!(!hood.is_empty(), "one-epoch-old pseudonyms must resolve");
    }

    #[test]
    fn updates_across_two_reshuffles_are_dropped() {
        let server = populated_server(true);
        let widget = Widget::new();
        let job = server.build_job(UserId(0));
        server.rotate_pseudonyms();
        server.rotate_pseudonyms();
        let out = widget.run_job(&job);
        server.apply_update(&out.update);
        let hood = server.knn_of(UserId(0)).unwrap();
        assert!(hood.is_empty(), "stale pseudonyms must not resolve");
    }

    #[test]
    fn cold_start_user_gets_bootstrap_job() {
        let server = populated_server(false);
        let job = server.build_job(UserId(999));
        assert!(job.profile.is_empty());
        assert!(!job.candidates.is_empty(), "random leg must bootstrap");
        assert!(!job.candidates.contains(UserId(999)));
    }

    #[test]
    fn profile_cap_bounds_job_sizes() {
        let server = HyRecServer::with_config(
            HyRecConfig::builder().k(2).profile_cap(3).seed(1).build(),
        );
        for u in 0..5u32 {
            for i in 0..50u32 {
                server.record(UserId(u), ItemId(i), Vote::Like);
            }
        }
        let job = server.build_job(UserId(0));
        assert!(job.profile.liked_len() <= 3);
        for c in job.candidates.iter() {
            assert!(c.profile.liked_len() <= 3);
        }
    }

    #[test]
    fn counters_track_activity() {
        let server = populated_server(false);
        let widget = Widget::new();
        let job = server.build_job(UserId(1));
        let out = widget.run_job(&job);
        server.apply_update(&out.update);
        assert_eq!(server.requests_served(), 1);
        assert_eq!(server.updates_applied(), 1);
        assert_eq!(server.user_count(), 30);
    }

    #[test]
    fn record_returns_change_flag() {
        let server = HyRecServer::new();
        assert!(server.record(UserId(1), ItemId(1), Vote::Like));
        assert!(!server.record(UserId(1), ItemId(1), Vote::Like));
        assert!(server.record(UserId(1), ItemId(1), Vote::Dislike));
    }
}
