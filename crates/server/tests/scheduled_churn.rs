//! Concurrency test for the leased pipeline: many browser threads fetch
//! jobs, a fixed fraction abandon them mid-flight, a wall-clock sweeper
//! re-issues (and eventually server-side-recomputes) the abandoned work —
//! and every user's KNN still converges to their taste group.

use hyrec_client::Widget;
use hyrec_core::{ItemId, UserId, Vote};
use hyrec_sched::SchedConfig;
use hyrec_server::{HyRecConfig, HyRecServer, ScheduledServer};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USERS: u32 = 30;
const GROUPS: u32 = 3;
const THREADS: usize = 8;
const ROUNDS: usize = 10;

fn taste_group_server(seed: u64) -> Arc<ScheduledServer> {
    let server = Arc::new(HyRecServer::with_config(
        HyRecConfig::builder()
            .k(3)
            .r(5)
            .anonymize_users(false)
            .seed(seed)
            .build(),
    ));
    let scheduled = Arc::new(ScheduledServer::new(
        server,
        SchedConfig {
            // Short enough that abandoned leases expire within the test,
            // long enough that an honest completion usually beats it even
            // when the whole workspace's test binaries share the core.
            lease_timeout: 120, // ms
            max_reissues: 1,
            ..SchedConfig::default()
        },
    ));
    for u in 0..USERS {
        let base = (u % GROUPS) * 100;
        for i in 0..8u32 {
            let now = scheduled.now_ms();
            scheduled.record(UserId(u), ItemId(base + i), Vote::Like, now);
        }
    }
    scheduled
}

#[test]
fn concurrent_browsers_with_abandonment_still_converge() {
    let scheduled = taste_group_server(17);
    let sweeper = scheduled.spawn_sweeper(Duration::from_millis(10));

    // 8 browser threads × 10 rounds over 30 users; every 4th fetch is
    // abandoned (25% churn). Deterministic per-thread abandon pattern so
    // the run is reproducible modulo scheduling.
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let scheduled = Arc::clone(&scheduled);
            std::thread::spawn(move || {
                let widget = Widget::new();
                let mut completed = 0usize;
                let mut abandoned = 0usize;
                for round in 0..ROUNDS {
                    for u in (t as u32 % GROUPS..USERS).step_by(THREADS / 2) {
                        let now = scheduled.now_ms();
                        let job = scheduled.issue_jobs(&[UserId(u)], now).pop().unwrap();
                        assert!(job.lease > 0, "every issued job carries a lease");
                        if (round + u as usize + t).is_multiple_of(4) {
                            abandoned += 1; // browser navigates away
                            continue;
                        }
                        let update = widget.run_job(&job).update;
                        let now = scheduled.now_ms();
                        // Rejections are legitimate under concurrency
                        // (a sibling lease may have completed first, or the
                        // sweeper may have re-issued a slow fetch); they
                        // must never panic the pipeline.
                        let _ = scheduled.complete_updates(&[update], now);
                        completed += 1;
                    }
                }
                (completed, abandoned)
            })
        })
        .collect();
    let (mut completed, mut abandoned) = (0, 0);
    for handle in handles {
        let (c, a) = handle.join().expect("browser thread panicked");
        completed += c;
        abandoned += a;
    }
    assert!(completed > 0 && abandoned > 0);

    // Let the sweeper chase the abandoned tail: every abandoned lease
    // expires within lease_timeout, climbs the ladder, and lands either on
    // another browser (none left now) or in server-side fallback. Drained
    // means no live leases, an empty re-issue backlog, an empty fallback
    // pen, and nobody overdue.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let now = scheduled.now_ms();
        let (report, _) = scheduled.sweep_and_recover(now);
        let outstanding = scheduled.scheduler().outstanding_leases();
        let overdue = scheduled.scheduler().overdue_users(now, 500);
        if outstanding == 0
            && overdue.is_empty()
            && report.reissue_backlog == 0
            && report.fallback_ready == 0
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "sweeper failed to drain: {outstanding} leases, {} overdue, {report:?}",
            overdue.len()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    sweeper.stop();

    // Despite 25% abandonment, every user has a neighbourhood and the
    // table converged to the taste groups.
    let server = scheduled.server();
    for u in 0..USERS {
        let hood = server.knn_of(UserId(u)).unwrap_or_else(|| {
            panic!(
                "u{u} has no KNN after recovery (stats {:?}, state {:?}, now {})",
                scheduled.scheduler().stats().snapshot(),
                scheduled.scheduler().user_snapshot(UserId(u)),
                scheduled.now_ms(),
            )
        });
        assert!(!hood.is_empty(), "u{u} has an empty neighbourhood");
    }
    // Under parallel-test CPU contention some in-flight completions lose
    // their epoch race and a few users keep an older (mid-convergence)
    // refresh, so the bound is looser than the single-test ideal (~1.0).
    assert!(
        server.average_view_similarity() > 0.85,
        "converged similarity too low: {}",
        server.average_view_similarity()
    );

    let stats = scheduled.scheduler().stats();
    assert!(stats.expired() > 0, "abandonment must expire leases");
    assert!(
        stats.reissued() + stats.fallbacks() > 0,
        "expired leases must be re-issued or recomputed"
    );
}

#[test]
fn rejected_completions_never_reach_the_knn_table() {
    let scheduled = taste_group_server(23);
    let widget = Widget::new();

    // Issue for one user, then complete twice from two "browsers" racing:
    // exactly one application lands in the table.
    let job = scheduled.issue_jobs(&[UserId(5)], 0).pop().unwrap();
    let update = widget.run_job(&job).update;
    let applied_before = scheduled.server().updates_applied();
    let outcomes = scheduled.complete_updates(&[update.clone(), update], 1);
    assert_eq!(outcomes[0], Ok(()));
    assert!(outcomes[1].is_err());
    assert_eq!(scheduled.server().updates_applied(), applied_before + 1);
}
