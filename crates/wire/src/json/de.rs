//! Recursive-descent JSON parser (RFC 8259).
//!
//! Handles the full grammar: nested containers, all escape sequences
//! including `\uXXXX` surrogate pairs, and scientific-notation numbers.
//! Depth is bounded to keep adversarial inputs from blowing the stack — the
//! widget runs inside a browser tab and must never crash the page.

use super::JsonValue;
use crate::error::WireError;

/// Maximum container nesting depth accepted by the parser.
const MAX_DEPTH: usize = 256;

/// Parses a complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns [`WireError::Json`] with the byte offset of the failure.
pub fn parse(text: &str) -> Result<JsonValue, WireError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> WireError {
        WireError::Json {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, WireError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, WireError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(entries)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?;
                out.push_str(chunk);
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => out.push(self.escape()?),
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, WireError> {
        match self.bump() {
            Some(b'"') => Ok('"'),
            Some(b'\\') => Ok('\\'),
            Some(b'/') => Ok('/'),
            Some(b'b') => Ok('\u{0008}'),
            Some(b'f') => Ok('\u{000C}'),
            Some(b'n') => Ok('\n'),
            Some(b'r') => Ok('\r'),
            Some(b't') => Ok('\t'),
            Some(b'u') => {
                let high = self.hex4()?;
                if (0xD800..0xDC00).contains(&high) {
                    // High surrogate: must be followed by \uDC00..DFFF.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    let low = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))
                } else if (0xDC00..0xE000).contains(&high) {
                    Err(self.err("unpaired low surrogate"))
                } else {
                    char::from_u32(high).ok_or_else(|| self.err("invalid \\u escape"))
                }
            }
            _ => Err(self.err("invalid escape sequence")),
        }
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            value = value * 16 + digit;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0 | [1-9][0-9]*
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(parse("-0.5e2").unwrap(), JsonValue::Number(-50.0));
        assert_eq!(parse(r#""hi""#).unwrap(), JsonValue::String("hi".into()));
    }

    #[test]
    fn parses_containers_with_whitespace() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_object().unwrap().len(), 0);
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""a\nb\t\"c\\dA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\nb\t\"c\\dA"));
    }

    #[test]
    fn parses_surrogate_pairs() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[",
            "tru",
            "01",
            "1.",
            "1e",
            "\"",
            "\"\\q\"",
            "{\"a\"}",
            "[1,]",
            "{\"a\":1,}",
            "1 2",
            "\"\\ud800\"",
            "nul",
            "+1",
            ".5",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_depth() {
        let deep = "[".repeat(300) + &"]".repeat(300);
        assert!(matches!(parse(&deep), Err(WireError::Json { .. })));
    }

    #[test]
    fn error_reports_offset() {
        let err = parse(r#"{"a": @}"#).unwrap_err();
        match err {
            WireError::Json { offset, .. } => assert_eq!(offset, 6),
            other => panic!("unexpected error {other:?}"),
        }
    }

    mod properties {
        use super::*;
        use crate::json::object;
        use proptest::prelude::*;

        fn arb_json(depth: u32) -> BoxedStrategy<JsonValue> {
            let leaf = prop_oneof![
                Just(JsonValue::Null),
                any::<bool>().prop_map(JsonValue::Bool),
                (-1e9f64..1e9).prop_map(JsonValue::Number),
                any::<i32>().prop_map(|n| JsonValue::Number(f64::from(n))),
                "[a-zA-Z0-9 _\\-\"\\\\\n\t\u{00e9}\u{4e16}]{0,20}".prop_map(JsonValue::String),
            ];
            if depth == 0 {
                leaf.boxed()
            } else {
                prop_oneof![
                    4 => leaf,
                    1 => proptest::collection::vec(arb_json(depth - 1), 0..5)
                        .prop_map(JsonValue::Array),
                    1 => proptest::collection::vec(
                        ("[a-z]{1,8}", arb_json(depth - 1)),
                        0..5
                    ).prop_map(object),
                ]
                .boxed()
            }
        }

        proptest! {
            #[test]
            fn serialize_parse_round_trips(v in arb_json(3)) {
                let text = v.to_string();
                let back = parse(&text).unwrap();
                // Numbers may differ representation-wise; compare re-serialized.
                prop_assert_eq!(back.to_string(), text);
            }

            #[test]
            fn parser_never_panics(s in "\\PC{0,100}") {
                let _ = parse(&s);
            }
        }
    }
}
