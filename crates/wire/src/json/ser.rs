//! Compact JSON serialization.
//!
//! Emits the exact byte shape the paper's server produces before gzip:
//! compact separators, integers without a fractional part, control characters
//! escaped per RFC 8259.

use super::JsonValue;
use std::fmt;

pub(super) fn write_value(f: &mut fmt::Formatter<'_>, value: &JsonValue) -> fmt::Result {
    match value {
        JsonValue::Null => f.write_str("null"),
        JsonValue::Bool(true) => f.write_str("true"),
        JsonValue::Bool(false) => f.write_str("false"),
        JsonValue::Number(n) => write_number(f, *n),
        JsonValue::String(s) => write_string(f, s),
        JsonValue::Array(items) => {
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_value(f, item)?;
            }
            f.write_str("]")
        }
        JsonValue::Object(entries) => {
            f.write_str("{")?;
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_string(f, key)?;
                f.write_str(":")?;
                write_value(f, item)?;
            }
            f.write_str("}")
        }
    }
}

fn write_number(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if n.is_nan() || n.is_infinite() {
        // JSON has no NaN/Inf; Jackson throws, we emit null like JS JSON.stringify.
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        write!(f, "{}", n as i64)
    } else {
        // `{}` on f64 produces the shortest representation that round-trips.
        write!(f, "{n}")
    }
}

fn write_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{0008}' => f.write_str("\\b")?,
            '\u{000C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use crate::json::{object, JsonValue};

    #[test]
    fn scalars() {
        assert_eq!(JsonValue::Null.to_string(), "null");
        assert_eq!(JsonValue::Bool(true).to_string(), "true");
        assert_eq!(JsonValue::Bool(false).to_string(), "false");
        assert_eq!(JsonValue::Number(3.0).to_string(), "3");
        assert_eq!(JsonValue::Number(-2.5).to_string(), "-2.5");
        assert_eq!(JsonValue::Number(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn string_escapes() {
        let s = JsonValue::String("a\"b\\c\nd\te\u{0001}".into());
        assert_eq!(s.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn unicode_passthrough() {
        let s = JsonValue::String("héllo — 世界".into());
        assert_eq!(s.to_string(), "\"héllo — 世界\"");
    }

    #[test]
    fn nested_structure_is_compact() {
        let v = object([(
            "outer",
            JsonValue::Array(vec![
                object([("x", JsonValue::from(1u32))]),
                JsonValue::Null,
            ]),
        )]);
        assert_eq!(v.to_string(), r#"{"outer":[{"x":1},null]}"#);
    }

    #[test]
    fn large_integers_stay_integral() {
        let v = JsonValue::Number(4_294_967_295.0); // u32::MAX
        assert_eq!(v.to_string(), "4294967295");
    }
}
