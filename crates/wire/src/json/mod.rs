//! A from-scratch JSON document model (value, serializer, parser).
//!
//! Mirrors what the paper's stack (Jackson on the server, `JSON.parse` in the
//! browser) does with personalization jobs: order-preserving objects, UTF-8
//! text, no streaming. The serializer emits compact JSON (no whitespace) —
//! the same shape the paper measures in Figure 10 before gzip.

mod de;
mod ser;

pub use de::parse;

use crate::error::WireError;
use std::fmt;

/// A parsed JSON value.
///
/// Objects preserve insertion order (like Jackson's default `ObjectNode`
/// serialization), which keeps serialized bytes deterministic — important for
/// reproducible message-size measurements.
///
/// ```
/// use hyrec_wire::json::JsonValue;
/// let v = JsonValue::parse(r#"{"k": [1, true, null, "s"]}"#)?;
/// let arr = v.get("k").unwrap().as_array().unwrap();
/// assert_eq!(arr.len(), 4);
/// assert_eq!(v.to_string(), r#"{"k":[1,true,null,"s"]}"#);
/// # Ok::<(), hyrec_wire::WireError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Stored as `f64`; integers up to 2^53 round-trip.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document from text.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Json`] with the byte offset of the first
    /// malformed construct.
    pub fn parse(text: &str) -> Result<JsonValue, WireError> {
        de::parse(text)
    }

    /// Looks up a key on an object; `None` on non-objects or missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Indexes into an array; `None` on non-arrays or out of range.
    #[must_use]
    pub fn at(&self, index: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object entries, if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// True for `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Serializes to compact JSON bytes (no whitespace).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_string().into_bytes()
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        ser::write_value(f, self)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Number(n)
    }
}

impl From<u32> for JsonValue {
    fn from(n: u32) -> Self {
        JsonValue::Number(f64::from(n))
    }
}

impl From<i32> for JsonValue {
    fn from(n: i32) -> Self {
        JsonValue::Number(f64::from(n))
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

impl<T: Into<JsonValue>> FromIterator<T> for JsonValue {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        JsonValue::Array(iter.into_iter().map(Into::into).collect())
    }
}

/// Builds a [`JsonValue::Object`] from `(key, value)` pairs, preserving order.
///
/// ```
/// use hyrec_wire::json::{object, JsonValue};
/// let o = object([("a", JsonValue::from(1u32)), ("b", JsonValue::from("x"))]);
/// assert_eq!(o.to_string(), r#"{"a":1,"b":"x"}"#);
/// ```
pub fn object<K, I>(entries: I) -> JsonValue
where
    K: Into<String>,
    I: IntoIterator<Item = (K, JsonValue)>,
{
    JsonValue::Object(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v =
            JsonValue::parse(r#"{"n": 3, "s": "hi", "b": true, "z": null, "a": [1.5]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.get("z").unwrap().is_null());
        assert_eq!(v.get("a").unwrap().at(0).unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("a").unwrap().at(0).unwrap().as_u64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.at(0), None);
    }

    #[test]
    fn negative_numbers() {
        let v = JsonValue::parse("-4").unwrap();
        assert_eq!(v.as_i64(), Some(-4));
        assert_eq!(v.as_u64(), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(JsonValue::from(true), JsonValue::Bool(true));
        assert_eq!(JsonValue::from(3u32).as_u64(), Some(3));
        assert_eq!(JsonValue::from("x").as_str(), Some("x"));
        let arr: JsonValue = [1u32, 2, 3].into_iter().collect();
        assert_eq!(arr.as_array().unwrap().len(), 3);
    }

    #[test]
    fn object_preserves_order() {
        let o = object([("z", JsonValue::from(1u32)), ("a", JsonValue::from(2u32))]);
        assert_eq!(o.to_string(), r#"{"z":1,"a":2}"#);
    }
}
