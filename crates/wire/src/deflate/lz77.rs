//! LZ77 tokenization with hash-chain matching (the zlib approach).
//!
//! Produces the literal/match token stream that the Huffman stage encodes.
//! Window 32 KiB, matches 3..=258 bytes. The matcher follows zlib's
//! structure: a 3-byte hash chains positions; [`Effort`] trades chain depth,
//! lazy evaluation and hash-insert density for speed, with the fast preset
//! tuned for on-the-fly compression of dynamic responses.

/// Minimum match length DEFLATE can encode.
pub const MIN_MATCH: usize = 3;
/// Maximum match length DEFLATE can encode.
pub const MAX_MATCH: usize = 258;
/// Maximum backward distance.
pub const WINDOW_SIZE: usize = 32 * 1024;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes back.
    Match {
        /// Match length in `3..=258`.
        len: u16,
        /// Backward distance in `1..=32768`.
        dist: u16,
    },
}

/// Match-effort knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effort {
    /// Maximum chain positions probed per match attempt.
    pub max_chain: usize,
    /// Stop early when a match at least this long is found.
    pub good_enough: usize,
    /// Defer a match by one byte when the next position matches longer
    /// (zlib's lazy evaluation; off in the fast preset).
    pub lazy: bool,
    /// Insert hash entries for every byte inside emitted matches (better
    /// ratio, slower; off in the fast preset).
    pub dense_insert: bool,
}

impl Effort {
    /// Balanced default (zlib level ~6).
    pub const DEFAULT: Effort = Effort {
        max_chain: 128,
        good_enough: 64,
        lazy: true,
        dense_insert: true,
    };
    /// Fast, lighter compression (zlib level ~1): shallow chains, greedy,
    /// sparse insertion — for compressing responses on the fly.
    pub const FAST: Effort = Effort {
        max_chain: 8,
        good_enough: 32,
        lazy: false,
        dense_insert: false,
    };
    /// Thorough (zlib level ~9).
    pub const BEST: Effort = Effort {
        max_chain: 1024,
        good_enough: 258,
        lazy: true,
        dense_insert: true,
    };
}

impl Default for Effort {
    fn default() -> Self {
        Effort::DEFAULT
    }
}

const HASH_BITS: usize = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash3(data: &[u8], pos: usize) -> usize {
    let h =
        (u32::from(data[pos]) << 16) ^ (u32::from(data[pos + 1]) << 8) ^ u32::from(data[pos + 2]);
    ((h.wrapping_mul(2_654_435_761)) >> (32 - HASH_BITS)) as usize & (HASH_SIZE - 1)
}

/// Length of the common prefix of `data[a..]` and `data[b..]`, up to `max`,
/// compared 8 bytes at a time.
#[inline]
fn match_length(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    let mut len = 0usize;
    while len + 8 <= max {
        let x = u64::from_le_bytes(data[a + len..a + len + 8].try_into().expect("8 bytes"));
        let y = u64::from_le_bytes(data[b + len..b + len + 8].try_into().expect("8 bytes"));
        let diff = x ^ y;
        if diff != 0 {
            return len + (diff.trailing_zeros() / 8) as usize;
        }
        len += 8;
    }
    while len < max && data[a + len] == data[b + len] {
        len += 1;
    }
    len
}

struct Matcher {
    head: Vec<u32>,
    prev: Vec<u32>,
    effort: Effort,
}

impl Matcher {
    fn new(effort: Effort) -> Self {
        Self {
            head: vec![0u32; HASH_SIZE],
            prev: vec![0u32; WINDOW_SIZE],
            effort,
        }
    }

    #[inline]
    fn insert(&mut self, data: &[u8], pos: usize) {
        if pos + MIN_MATCH <= data.len() {
            let h = hash3(data, pos);
            self.prev[pos % WINDOW_SIZE] = self.head[h];
            self.head[h] = pos as u32 + 1;
        }
    }

    #[inline]
    fn best_match(&self, data: &[u8], pos: usize) -> Option<(usize, usize)> {
        if pos + MIN_MATCH > data.len() {
            return None;
        }
        let max_len = (data.len() - pos).min(MAX_MATCH);
        let mut candidate = self.head[hash3(data, pos)];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain = self.effort.max_chain;
        while candidate != 0 && chain > 0 {
            let cand = (candidate - 1) as usize;
            if cand >= pos || pos - cand > WINDOW_SIZE {
                break;
            }
            // Quick reject: a longer match must agree at the position that
            // would extend the current best.
            if data[cand + best_len] == data[pos + best_len] {
                let len = match_length(data, cand, pos, max_len);
                if len > best_len {
                    best_len = len;
                    best_dist = pos - cand;
                    if len >= self.effort.good_enough || len == max_len {
                        break;
                    }
                }
            }
            candidate = self.prev[cand % WINDOW_SIZE];
            chain -= 1;
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    }
}

/// Tokenizes `data` into literals and back-references.
///
/// ```
/// use hyrec_wire::deflate::lz77::{tokenize, Effort, Token};
/// let tokens = tokenize(b"abcabcabcabc", Effort::DEFAULT);
/// assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
/// ```
#[must_use]
pub fn tokenize(data: &[u8], effort: Effort) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 4 + 16);
    if n < MIN_MATCH + 1 {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    let mut matcher = Matcher::new(effort);

    let mut pos = 0usize;
    while pos < n {
        match matcher.best_match(data, pos) {
            None => {
                tokens.push(Token::Literal(data[pos]));
                matcher.insert(data, pos);
                pos += 1;
            }
            Some((mut len, mut dist)) => {
                matcher.insert(data, pos);
                if effort.lazy && pos + 1 < n {
                    // One-step lazy: if the next position matches strictly
                    // longer, emit a literal and let it win.
                    if let Some((lazy_len, _)) = matcher.best_match(data, pos + 1) {
                        if lazy_len > len {
                            tokens.push(Token::Literal(data[pos]));
                            pos += 1;
                            // Reuse the lazy result next iteration via the
                            // normal path (hash state already consistent).
                            continue;
                        }
                    }
                }
                // Clamp pathological overlaps near the window edge.
                if dist > WINDOW_SIZE {
                    dist = WINDOW_SIZE;
                }
                if len > MAX_MATCH {
                    len = MAX_MATCH;
                }
                tokens.push(Token::Match {
                    len: len as u16,
                    dist: dist as u16,
                });
                if effort.dense_insert {
                    for p in pos + 1..pos + len {
                        matcher.insert(data, p);
                    }
                } else {
                    // Sparse insertion: just the match end, so runs still
                    // chain reasonably.
                    let tail = pos + len - 1;
                    matcher.insert(data, tail);
                }
                pos += len;
            }
        }
    }
    tokens
}

/// Expands a token stream back into bytes (reference decoder for tests).
#[must_use]
pub fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for token in tokens {
        match *token {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                for i in 0..len as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_input_is_all_literals() {
        let tokens = tokenize(b"ab", Effort::DEFAULT);
        assert_eq!(tokens, vec![Token::Literal(b'a'), Token::Literal(b'b')]);
    }

    #[test]
    fn repetitive_input_produces_matches() {
        let data = b"abcabcabcabcabcabc";
        for effort in [Effort::FAST, Effort::DEFAULT, Effort::BEST] {
            let tokens = tokenize(data, effort);
            let matches = tokens
                .iter()
                .filter(|t| matches!(t, Token::Match { .. }))
                .count();
            assert!(matches >= 1);
            assert_eq!(expand(&tokens), data.to_vec());
        }
    }

    #[test]
    fn run_length_uses_overlapping_match() {
        // "aaaa..." canonically encodes as literal 'a' + match(dist=1).
        let data = vec![b'a'; 100];
        let tokens = tokenize(&data, Effort::DEFAULT);
        assert_eq!(tokens[0], Token::Literal(b'a'));
        assert!(matches!(tokens[1], Token::Match { dist: 1, .. }));
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn match_lengths_respect_bounds() {
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 7) as u8).collect();
        for effort in [Effort::FAST, Effort::DEFAULT, Effort::BEST] {
            let tokens = tokenize(&data, effort);
            for t in &tokens {
                if let Token::Match { len, dist } = t {
                    assert!((MIN_MATCH..=MAX_MATCH).contains(&(*len as usize)));
                    assert!((1..=WINDOW_SIZE).contains(&(*dist as usize)));
                }
            }
            assert_eq!(expand(&tokens), data);
        }
    }

    #[test]
    fn empty_input() {
        assert!(tokenize(b"", Effort::DEFAULT).is_empty());
        assert!(expand(&[]).is_empty());
    }

    #[test]
    fn match_length_chunked_agrees_with_naive() {
        let a = b"abcdefghijklmnop_abcdefghijklmnoX";
        assert_eq!(match_length(a, 0, 17, 16), 15);
        assert_eq!(match_length(a, 0, 17, 8), 8);
        assert_eq!(match_length(b"xyz", 0, 1, 2), 0);
        let same = vec![7u8; 600];
        assert_eq!(match_length(&same, 0, 100, 258), 258);
    }

    #[test]
    fn json_like_data_round_trips_all_efforts() {
        let mut doc = String::from("{\"c\":[");
        for i in 0..400 {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&format!("{{\"uid\":{},\"liked\":[{}]}}", i * 7, i % 50));
        }
        doc.push_str("]}");
        let data = doc.into_bytes();
        for effort in [Effort::FAST, Effort::DEFAULT, Effort::BEST] {
            let tokens = tokenize(&data, effort);
            assert_eq!(expand(&tokens), data, "effort {effort:?}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn tokenize_expand_round_trips(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
                for effort in [Effort::FAST, Effort::DEFAULT] {
                    let tokens = tokenize(&data, effort);
                    prop_assert_eq!(expand(&tokens), data.clone());
                }
            }

            #[test]
            fn round_trips_on_compressible_text(
                words in proptest::collection::vec("[a-e]{1,6}", 0..200)
            ) {
                let data = words.join(" ").into_bytes();
                for effort in [Effort::FAST, Effort::DEFAULT, Effort::BEST] {
                    let tokens = tokenize(&data, effort);
                    prop_assert_eq!(expand(&tokens), data.clone());
                }
            }
        }
    }
}
