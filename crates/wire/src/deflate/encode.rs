//! The DEFLATE compressor: token stream → smallest of stored / fixed / dynamic.

use super::bitio::BitWriter;
use super::huffman::{
    assign_codes, build_code_lengths, fixed_distance_lengths, fixed_literal_lengths, MAX_BITS,
};
use super::lz77::{tokenize, Effort, Token};
use super::{dist_to_code, length_to_code, CLC_ORDER};

/// Compresses `data` into a raw DEFLATE stream.
///
/// Encodes the whole input as one block (plus stored-block chunking when the
/// input is incompressible), picking whichever of stored / fixed-Huffman /
/// dynamic-Huffman encodings is smallest.
#[must_use]
pub fn compress(data: &[u8], effort: Effort) -> Vec<u8> {
    let mut writer = BitWriter::new();
    write_blocks(&mut writer, data, effort, true);
    writer.into_bytes()
}

/// Compresses `data` as a **non-final, byte-aligned chunk** — the
/// `Z_SYNC_FLUSH` framing of zlib.
///
/// The output consists of complete non-final DEFLATE blocks followed by an
/// empty non-final stored block that realigns the stream to a byte
/// boundary. Chunks produced this way concatenate freely; terminate the
/// assembled stream with [`STREAM_TERMINATOR`] to finish the member.
///
/// This is what lets a server cache *compressed* response fragments and
/// assemble gzip bodies by memcpy (see `hyrec_server::encoder`).
///
/// ```
/// use hyrec_wire::deflate::{self, lz77::Effort, STREAM_TERMINATOR};
/// let mut stream = deflate::compress_chunk(b"hello ", Effort::FAST);
/// stream.extend_from_slice(&deflate::compress_chunk(b"world", Effort::FAST));
/// stream.extend_from_slice(&STREAM_TERMINATOR);
/// assert_eq!(deflate::decompress(&stream)?, b"hello world");
/// # Ok::<(), hyrec_wire::WireError>(())
/// ```
#[must_use]
pub fn compress_chunk(data: &[u8], effort: Effort) -> Vec<u8> {
    let mut writer = BitWriter::new();
    write_blocks(&mut writer, data, effort, false);
    // Sync flush: empty non-final stored block. Its header bits continue
    // the stream wherever the previous block ended; the stored framing then
    // realigns to a byte boundary, so the result is exactly byte-aligned.
    writer.write_bits(0, 1); // BFINAL = 0
    writer.write_bits(0b00, 2); // stored
    writer.align_to_byte();
    writer.write_bytes(&0u16.to_le_bytes());
    writer.write_bytes(&(!0u16).to_le_bytes());
    writer.into_bytes()
}

/// The 5-byte empty **final** stored block terminating a stream assembled
/// from [`compress_chunk`] pieces.
pub const STREAM_TERMINATOR: [u8; 5] = [0x01, 0x00, 0x00, 0xFF, 0xFF];

fn write_blocks(writer: &mut BitWriter, data: &[u8], effort: Effort, final_stream: bool) {
    let tokens = tokenize(data, effort);

    // Symbol frequencies (including the mandatory end-of-block symbol 256).
    let mut lit_freqs = vec![0u64; 286];
    let mut dist_freqs = vec![0u64; 30];
    lit_freqs[256] = 1;
    for token in &tokens {
        match *token {
            Token::Literal(b) => lit_freqs[b as usize] += 1,
            Token::Match { len, dist } => {
                lit_freqs[length_to_code(len).0 as usize] += 1;
                dist_freqs[dist_to_code(dist).0 as usize] += 1;
            }
        }
    }

    let dyn_lit_lengths = build_code_lengths(&lit_freqs, MAX_BITS);
    let dyn_dist_lengths = build_code_lengths(&dist_freqs, MAX_BITS);

    let fixed_lit_lengths = fixed_literal_lengths();
    let fixed_dist_lengths = fixed_distance_lengths();

    // Costs in bits.
    let fixed_cost = body_cost(
        &tokens,
        &fixed_lit_lengths,
        &fixed_dist_lengths,
        &lit_freqs,
        &dist_freqs,
    );
    let (header, dyn_header_cost) = dynamic_header(&dyn_lit_lengths, &dyn_dist_lengths);
    let dyn_cost = dyn_header_cost
        + body_cost(
            &tokens,
            &dyn_lit_lengths,
            &dyn_dist_lengths,
            &lit_freqs,
            &dist_freqs,
        );
    let stored_cost = stored_cost_bits(data.len());

    let bfinal = u32::from(final_stream);
    if stored_cost <= fixed_cost.min(dyn_cost) {
        write_stored(writer, data, final_stream);
    } else if fixed_cost <= dyn_cost {
        writer.write_bits(bfinal, 1); // BFINAL
        writer.write_bits(0b01, 2); // fixed
        write_body(writer, &tokens, &fixed_lit_lengths, &fixed_dist_lengths);
    } else {
        writer.write_bits(bfinal, 1); // BFINAL
        writer.write_bits(0b10, 2); // dynamic
        write_dynamic_header(writer, &header);
        write_body(writer, &tokens, &dyn_lit_lengths, &dyn_dist_lengths);
    }
}

/// Bits needed to emit the token body under the given code lengths.
fn body_cost(
    _tokens: &[Token],
    lit_lengths: &[u8],
    dist_lengths: &[u8],
    lit_freqs: &[u64],
    dist_freqs: &[u64],
) -> u64 {
    let mut bits = 0u64;
    for (symbol, &freq) in lit_freqs.iter().enumerate() {
        if freq == 0 {
            continue;
        }
        let mut per = u64::from(lit_lengths[symbol]);
        if symbol >= 257 {
            per += u64::from(super::LENGTH_CODES[symbol - 257].1);
        }
        bits += freq * per;
    }
    for (symbol, &freq) in dist_freqs.iter().enumerate() {
        if freq == 0 {
            continue;
        }
        bits += freq * (u64::from(dist_lengths[symbol]) + u64::from(super::DIST_CODES[symbol].1));
    }
    bits + 3 // block header
}

fn stored_cost_bits(len: usize) -> u64 {
    // Each stored block: up to byte-align (≤7) + 3 header bits + 32 bits
    // LEN/NLEN + payload; blocks cap at 65535 bytes.
    let blocks = (len / 65535 + 1) as u64;
    blocks * (7 + 3 + 32) + (len as u64) * 8
}

fn write_stored(writer: &mut BitWriter, data: &[u8], final_stream: bool) {
    let mut chunks: Vec<&[u8]> = data.chunks(65535).collect();
    if chunks.is_empty() {
        chunks.push(&[]);
    }
    let last = chunks.len() - 1;
    for (i, chunk) in chunks.iter().enumerate() {
        writer.write_bits(u32::from(i == last && final_stream), 1); // BFINAL
        writer.write_bits(0b00, 2); // stored
        writer.align_to_byte();
        let len = chunk.len() as u16;
        writer.write_bytes(&len.to_le_bytes());
        writer.write_bytes(&(!len).to_le_bytes());
        writer.write_bytes(chunk);
    }
}

fn write_body(writer: &mut BitWriter, tokens: &[Token], lit_lengths: &[u8], dist_lengths: &[u8]) {
    let lit_codes = assign_codes(lit_lengths);
    let dist_codes = assign_codes(dist_lengths);
    let emit = |w: &mut BitWriter, codes: &[u16], lengths: &[u8], symbol: usize| {
        debug_assert!(lengths[symbol] > 0, "emitting symbol with no code");
        w.write_bits(u32::from(codes[symbol]), u32::from(lengths[symbol]));
    };
    for token in tokens {
        match *token {
            Token::Literal(b) => emit(writer, &lit_codes, lit_lengths, b as usize),
            Token::Match { len, dist } => {
                let (lcode, lextra, lvalue) = length_to_code(len);
                emit(writer, &lit_codes, lit_lengths, lcode as usize);
                if lextra > 0 {
                    writer.write_bits(u32::from(lvalue), u32::from(lextra));
                }
                let (dcode, dextra, dvalue) = dist_to_code(dist);
                emit(writer, &dist_codes, dist_lengths, dcode as usize);
                if dextra > 0 {
                    writer.write_bits(u32::from(dvalue), u32::from(dextra));
                }
            }
        }
    }
    emit(writer, &lit_codes, lit_lengths, 256); // end of block
}

/// A precomputed dynamic header: the RLE-compressed code-length sequence plus
/// the code-length-code tables.
struct DynamicHeader {
    hlit: usize,
    hdist: usize,
    hclen: usize,
    clc_lengths: Vec<u8>,
    clc_codes: Vec<u16>,
    /// `(symbol, extra_bits, extra_value)` triples of the RLE stream.
    rle: Vec<(u8, u8, u8)>,
}

/// Builds the dynamic header and returns it with its cost in bits.
fn dynamic_header(lit_lengths: &[u8], dist_lengths: &[u8]) -> (DynamicHeader, u64) {
    // DEFLATE requires hlit >= 257 and hdist >= 1; unused trailing codes trimmed.
    let hlit = (257..=286)
        .rev()
        .find(|&n| n == 257 || lit_lengths[n - 1] != 0)
        .unwrap_or(257);
    let hdist = (1..=30)
        .rev()
        .find(|&n| n == 1 || dist_lengths[n - 1] != 0)
        .unwrap_or(1);

    // Concatenate and RLE-encode with symbols 16 (repeat prev 3-6),
    // 17 (zeros 3-10), 18 (zeros 11-138).
    let mut all = Vec::with_capacity(hlit + hdist);
    all.extend_from_slice(&lit_lengths[..hlit]);
    all.extend_from_slice(&dist_lengths[..hdist]);

    let mut rle: Vec<(u8, u8, u8)> = Vec::new();
    let mut i = 0usize;
    while i < all.len() {
        let value = all[i];
        let mut run = 1usize;
        while i + run < all.len() && all[i + run] == value {
            run += 1;
        }
        if value == 0 {
            let mut remaining = run;
            while remaining >= 11 {
                let take = remaining.min(138);
                rle.push((18, 7, (take - 11) as u8));
                remaining -= take;
            }
            if remaining >= 3 {
                rle.push((17, 3, (remaining - 3) as u8));
                remaining = 0;
            }
            for _ in 0..remaining {
                rle.push((0, 0, 0));
            }
        } else {
            rle.push((value, 0, 0));
            let mut remaining = run - 1;
            while remaining >= 3 {
                let take = remaining.min(6);
                rle.push((16, 2, (take - 3) as u8));
                remaining -= take;
            }
            for _ in 0..remaining {
                rle.push((value, 0, 0));
            }
        }
        i += run;
    }

    // Code-length-code table from RLE symbol frequencies.
    let mut clc_freqs = vec![0u64; 19];
    for &(symbol, _, _) in &rle {
        clc_freqs[symbol as usize] += 1;
    }
    let clc_lengths = build_code_lengths(&clc_freqs, 7);
    let clc_codes = assign_codes(&clc_lengths);

    let hclen = (4..=19)
        .rev()
        .find(|&n| n == 4 || clc_lengths[CLC_ORDER[n - 1]] != 0)
        .unwrap_or(4);

    let mut cost = 5 + 5 + 4 + 3 * hclen as u64;
    for &(symbol, extra, _) in &rle {
        cost += u64::from(clc_lengths[symbol as usize]) + u64::from(extra);
    }

    (
        DynamicHeader {
            hlit,
            hdist,
            hclen,
            clc_lengths,
            clc_codes,
            rle,
        },
        cost,
    )
}

fn write_dynamic_header(writer: &mut BitWriter, header: &DynamicHeader) {
    writer.write_bits((header.hlit - 257) as u32, 5);
    writer.write_bits((header.hdist - 1) as u32, 5);
    writer.write_bits((header.hclen - 4) as u32, 4);
    for &order in CLC_ORDER.iter().take(header.hclen) {
        writer.write_bits(u32::from(header.clc_lengths[order]), 3);
    }
    for &(symbol, extra, value) in &header.rle {
        writer.write_bits(
            u32::from(header.clc_codes[symbol as usize]),
            u32::from(header.clc_lengths[symbol as usize]),
        );
        if extra > 0 {
            writer.write_bits(u32::from(value), u32::from(extra));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::decompress;

    #[test]
    fn empty_input_produces_valid_stream() {
        let packed = compress(b"", Effort::DEFAULT);
        assert!(!packed.is_empty());
        assert_eq!(decompress(&packed).unwrap(), b"");
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data = b"abcdefgh".repeat(1000);
        let packed = compress(&data, Effort::DEFAULT);
        assert!(packed.len() < data.len() / 10, "got {} bytes", packed.len());
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn incompressible_data_falls_back_to_stored() {
        // High-entropy bytes: stored must win, with only ~5 bytes/block overhead.
        let mut state = 0x9E3779B9u64;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        let packed = compress(&data, Effort::DEFAULT);
        assert!(packed.len() < data.len() + 64);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn json_like_payload_hits_target_ratio() {
        // The paper reports ~71% compression on JSON profiles (Figure 10).
        let mut doc = String::from("{\"profiles\":[");
        for u in 0..200 {
            if u > 0 {
                doc.push(',');
            }
            doc.push_str(&format!("{{\"uid\":{u},\"items\":["));
            for i in 0..50 {
                if i > 0 {
                    doc.push(',');
                }
                doc.push_str(&format!("{}", (u * 37 + i * 13) % 5000));
            }
            doc.push_str("]}");
        }
        doc.push_str("]}");
        let data = doc.into_bytes();
        let packed = compress(&data, Effort::DEFAULT);
        let ratio = 1.0 - packed.len() as f64 / data.len() as f64;
        assert!(ratio > 0.55, "compression ratio too low: {ratio:.2}");
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn compress_decompress_identity(data in proptest::collection::vec(any::<u8>(), 0..5000)) {
                for effort in [Effort::FAST, Effort::DEFAULT] {
                    let packed = compress(&data, effort);
                    prop_assert_eq!(decompress(&packed).unwrap(), data.clone());
                }
            }

            #[test]
            fn compressible_text_identity(words in proptest::collection::vec("[a-f ]{1,12}", 0..300)) {
                let data = words.concat().into_bytes();
                let packed = compress(&data, Effort::BEST);
                prop_assert_eq!(decompress(&packed).unwrap(), data);
            }
        }
    }
}
