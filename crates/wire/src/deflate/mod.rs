//! DEFLATE (RFC 1951) compression, written from scratch.
//!
//! The paper's server gzips every JSON personalization job "on the fly"
//! (Section 4.2) and the browser natively inflates it; Figure 10's bandwidth
//! numbers are a direct function of this codec. [`compress`] chooses per
//! stream between a stored block, the fixed Huffman code, and a dynamic
//! Huffman code, whichever is smallest; [`decompress`] handles all three.
//!
//! ```
//! use hyrec_wire::deflate;
//! let data = br#"{"uid":1,"profile":[1,2,3,4,5,6,7,8]}"#.repeat(20);
//! let packed = deflate::compress(&data, deflate::lz77::Effort::DEFAULT);
//! assert!(packed.len() < data.len());
//! assert_eq!(deflate::decompress(&packed)?, data);
//! # Ok::<(), hyrec_wire::WireError>(())
//! ```

pub mod bitio;
pub mod huffman;
pub mod lz77;

mod decode;
mod encode;

pub use decode::decompress;
pub use encode::{compress, compress_chunk, STREAM_TERMINATOR};

/// Length-code table: `(base_length, extra_bits)` for codes 257..=285.
pub(crate) const LENGTH_CODES: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// Distance-code table: `(base_distance, extra_bits)` for codes 0..=29.
pub(crate) const DIST_CODES: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

/// Order in which code-length-code lengths appear in a dynamic header.
pub(crate) const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Finds the length code for `len` (3..=258): returns `(symbol, extra_bits, extra_value)`.
pub(crate) fn length_to_code(len: u16) -> (u16, u8, u16) {
    debug_assert!((3..=258).contains(&len));
    // Last matching entry (base <= len); codes are sorted by base.
    let mut idx = LENGTH_CODES.len() - 1;
    for (i, &(base, _)) in LENGTH_CODES.iter().enumerate() {
        if base > len {
            idx = i - 1;
            break;
        }
    }
    // Special case: len==258 must use code 285 (extra 0), not 284+31.
    if len == 258 {
        idx = 28;
    }
    let (base, extra) = LENGTH_CODES[idx];
    (257 + idx as u16, extra, len - base)
}

/// Finds the distance code for `dist` (1..=32768).
pub(crate) fn dist_to_code(dist: u16) -> (u16, u8, u16) {
    debug_assert!(dist >= 1);
    let mut idx = DIST_CODES.len() - 1;
    for (i, &(base, _)) in DIST_CODES.iter().enumerate() {
        if base > dist {
            idx = i - 1;
            break;
        }
    }
    let (base, extra) = DIST_CODES[idx];
    (idx as u16, extra, dist - base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_codes_cover_whole_range() {
        for len in 3u16..=258 {
            let (code, extra, value) = length_to_code(len);
            assert!((257..=285).contains(&code));
            let (base, eb) = LENGTH_CODES[(code - 257) as usize];
            assert_eq!(eb, extra);
            assert_eq!(base + value, len);
            assert!(u32::from(value) < (1 << extra) || extra == 0 && value == 0);
        }
    }

    #[test]
    fn len_258_uses_code_285() {
        assert_eq!(length_to_code(258), (285, 0, 0));
        // 257 falls in code 284 with extra value 30.
        assert_eq!(length_to_code(257).0, 284);
    }

    #[test]
    fn dist_codes_cover_whole_range() {
        for dist in 1u32..=32768 {
            let (code, extra, value) = dist_to_code(dist as u16);
            assert!(code < 30);
            let (base, eb) = DIST_CODES[code as usize];
            assert_eq!(eb, extra);
            assert_eq!(u32::from(base) + u32::from(value), dist);
            assert!(u32::from(value) < (1 << extra) || extra == 0 && value == 0);
        }
    }

    #[test]
    fn full_round_trip_all_block_types() {
        // Incompressible (stored), tiny (fixed), repetitive (dynamic).
        let mut rng_state = 0x12345678u32;
        let mut random = Vec::with_capacity(70_000);
        for _ in 0..70_000 {
            rng_state = rng_state.wrapping_mul(1664525).wrapping_add(1013904223);
            random.push((rng_state >> 24) as u8);
        }
        let tiny = b"hello".to_vec();
        let repetitive = b"the quick brown fox ".repeat(500);

        for data in [random, tiny, repetitive, Vec::new()] {
            let packed = compress(&data, lz77::Effort::DEFAULT);
            let unpacked = decompress(&packed).expect("round trip");
            assert_eq!(unpacked, data);
        }
    }
}
