//! LSB-first bit I/O as required by DEFLATE (RFC 1951 §3.1.1).
//!
//! Data elements are packed starting from the least-significant bit of each
//! byte. Huffman codes are the one exception — they are packed starting from
//! the most-significant bit of the *code* — which callers handle by
//! bit-reversing codes before writing ([`reverse_bits`]).

/// Writes bit fields LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits accumulated but not yet flushed (low bits are oldest).
    bit_buf: u64,
    /// Number of valid bits in `bit_buf` (< 8 after `flush_bytes`).
    bit_count: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `count` bits of `value`, LSB-first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32` (DEFLATE fields never exceed 16 bits).
    pub fn write_bits(&mut self, value: u32, count: u32) {
        assert!(count <= 32, "bit field too wide: {count}");
        debug_assert!(count == 32 || u64::from(value) < (1u64 << count));
        self.bit_buf |= u64::from(value) << self.bit_count;
        self.bit_count += count;
        while self.bit_count >= 8 {
            self.bytes.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Pads with zero bits to the next byte boundary (stored-block headers).
    pub fn align_to_byte(&mut self) {
        if self.bit_count > 0 {
            self.bytes.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf = 0;
            self.bit_count = 0;
        }
    }

    /// Appends whole bytes; the writer must be byte-aligned.
    ///
    /// # Panics
    ///
    /// Panics if called while not at a byte boundary.
    pub fn write_bytes(&mut self, data: &[u8]) {
        assert_eq!(self.bit_count, 0, "write_bytes requires byte alignment");
        self.bytes.extend_from_slice(data);
    }

    /// Number of complete bytes written so far.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Finishes the stream, flushing any partial byte (zero-padded).
    #[must_use]
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.bytes
    }
}

/// Reads bit fields LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next unread byte.
    pos: usize,
    bit_buf: u64,
    bit_count: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            bit_buf: 0,
            bit_count: 0,
        }
    }

    fn refill(&mut self) {
        while self.bit_count <= 56 && self.pos < self.bytes.len() {
            self.bit_buf |= u64::from(self.bytes[self.pos]) << self.bit_count;
            self.pos += 1;
            self.bit_count += 8;
        }
    }

    /// Reads `count` bits (LSB-first); `None` if the input is exhausted.
    pub fn read_bits(&mut self, count: u32) -> Option<u32> {
        debug_assert!(count <= 32);
        self.refill();
        if self.bit_count < count {
            return None;
        }
        let mask = if count == 32 {
            u32::MAX
        } else {
            (1u32 << count) - 1
        };
        let value = (self.bit_buf as u32) & mask;
        self.bit_buf >>= count;
        self.bit_count -= count;
        Some(value)
    }

    /// Peeks up to `count` bits without consuming; missing high bits are zero
    /// (valid streams are padded, so a short peek near EOF still decodes).
    pub fn peek_bits(&mut self, count: u32) -> u32 {
        debug_assert!(count <= 32);
        self.refill();
        let mask = if count == 32 {
            u32::MAX
        } else {
            (1u32 << count) - 1
        };
        (self.bit_buf as u32) & mask
    }

    /// Consumes `count` bits previously peeked.
    ///
    /// Returns `false` if fewer than `count` bits remain.
    pub fn consume_bits(&mut self, count: u32) -> bool {
        if self.bit_count < count {
            self.refill();
        }
        if self.bit_count < count {
            return false;
        }
        self.bit_buf >>= count;
        self.bit_count -= count;
        true
    }

    /// Discards buffered bits to realign at a byte boundary (stored blocks).
    pub fn align_to_byte(&mut self) {
        let drop = self.bit_count % 8;
        self.bit_buf >>= drop;
        self.bit_count -= drop;
    }

    /// Reads `len` whole bytes; the reader must be byte-aligned.
    pub fn read_bytes(&mut self, len: usize) -> Option<Vec<u8>> {
        debug_assert_eq!(self.bit_count % 8, 0);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let b = self.read_bits(8)?;
            out.push(b as u8);
        }
        Some(out)
    }

    /// True when every bit has been consumed (ignoring final-byte padding).
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.bytes.len() && self.bit_count < 8
    }
}

/// Reverses the low `count` bits of `value` (MSB-first Huffman packing).
///
/// ```
/// use hyrec_wire::deflate::bitio::reverse_bits;
/// assert_eq!(reverse_bits(0b110, 3), 0b011);
/// assert_eq!(reverse_bits(0b1, 1), 0b1);
/// ```
#[must_use]
pub fn reverse_bits(value: u32, count: u32) -> u32 {
    let mut v = value;
    let mut out = 0u32;
    for _ in 0..count {
        out = (out << 1) | (v & 1);
        v >>= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b11, 2);
        w.write_bits(0x5AA5, 16);
        let bytes = w.into_bytes();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(2), Some(0b11));
        assert_eq!(r.read_bits(16), Some(0x5AA5));
    }

    #[test]
    fn align_and_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.align_to_byte();
        w.write_bytes(&[0xAB, 0xCD]);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 3);

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1), Some(1));
        r.align_to_byte();
        assert_eq!(r.read_bytes(2), Some(vec![0xAB, 0xCD]));
        assert!(r.is_exhausted());
    }

    #[test]
    fn read_past_end_returns_none() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8), Some(0xFF));
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut r = BitReader::new(&[0b1010_1010]);
        assert_eq!(r.peek_bits(4), 0b1010);
        assert_eq!(r.peek_bits(4), 0b1010);
        assert!(r.consume_bits(2));
        assert_eq!(r.peek_bits(2), 0b10);
    }

    #[test]
    fn peek_near_eof_zero_pads() {
        let mut r = BitReader::new(&[0b1]);
        assert_eq!(r.peek_bits(16), 1);
        assert!(r.consume_bits(8));
        assert!(!r.consume_bits(8));
    }

    #[test]
    fn reverse_bits_cases() {
        assert_eq!(reverse_bits(0, 0), 0);
        assert_eq!(reverse_bits(0b0001, 4), 0b1000);
        assert_eq!(reverse_bits(0b10110, 5), 0b01101);
        assert_eq!(reverse_bits(u32::MAX, 32), u32::MAX);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn arbitrary_fields_round_trip(
                fields in proptest::collection::vec((0u32..=u16::MAX as u32, 1u32..=16), 0..100)
            ) {
                let mut w = BitWriter::new();
                for (value, count) in &fields {
                    let masked = value & ((1 << count) - 1);
                    w.write_bits(masked, *count);
                }
                let bytes = w.into_bytes();
                let mut r = BitReader::new(&bytes);
                for (value, count) in &fields {
                    let masked = value & ((1 << count) - 1);
                    prop_assert_eq!(r.read_bits(*count), Some(masked));
                }
            }

            #[test]
            fn double_reverse_is_identity(value in any::<u32>(), count in 0u32..=32) {
                let masked = if count == 32 { value } else { value & ((1u32 << count) - 1) };
                prop_assert_eq!(reverse_bits(reverse_bits(masked, count), count), masked);
            }
        }
    }
}
