//! Canonical Huffman coding for DEFLATE (RFC 1951 §3.2.2).
//!
//! The encoder side builds length-limited code lengths from symbol
//! frequencies (Huffman tree + zlib-style depth fixup), then assigns
//! canonical codes. The decoder side turns code lengths into a flat lookup
//! table indexed by bit-reversed codes, matching the LSB-first bit reader.

use super::bitio::{reverse_bits, BitReader};
use crate::error::WireError;

/// Maximum code length permitted by DEFLATE.
pub const MAX_BITS: usize = 15;

/// Computes length-limited Huffman code lengths from frequencies.
///
/// Returns one length per symbol (0 = symbol unused). At most `max_bits`
/// bits per code; the result always satisfies Kraft's inequality with
/// equality when ≥ 2 symbols are used (a complete code, as DEFLATE
/// requires for dynamic blocks).
///
/// A single used symbol gets length 1 (DEFLATE requires at least one bit).
///
/// # Panics
///
/// Panics if `max_bits` cannot accommodate the alphabet
/// (`symbols > 2^max_bits`), which static call sites never do.
#[must_use]
pub fn build_code_lengths(freqs: &[u64], max_bits: usize) -> Vec<u8> {
    let n = freqs.len();
    assert!(n <= (1usize << max_bits), "alphabet too large for max_bits");
    let used: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    let mut lengths = vec![0u8; n];
    match used.len() {
        0 => return lengths,
        1 => {
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Standard Huffman via two-queue / heap construction.
    #[derive(Debug)]
    struct Node {
        freq: u64,
        // Leaf: symbol index; Internal: children indices into `nodes`.
        kind: NodeKind,
    }
    #[derive(Debug)]
    enum NodeKind {
        Leaf(usize),
        Internal(usize, usize),
    }

    let mut nodes: Vec<Node> = used
        .iter()
        .map(|&s| Node {
            freq: freqs[s],
            kind: NodeKind::Leaf(s),
        })
        .collect();

    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<(Reverse<u64>, usize)> = nodes
        .iter()
        .enumerate()
        .map(|(i, node)| (Reverse(node.freq), i))
        .collect();

    while heap.len() > 1 {
        let (Reverse(fa), a) = heap.pop().expect("heap len checked");
        let (Reverse(fb), b) = heap.pop().expect("heap len checked");
        let merged = Node {
            freq: fa + fb,
            kind: NodeKind::Internal(a, b),
        };
        nodes.push(merged);
        heap.push((Reverse(fa + fb), nodes.len() - 1));
    }
    let root = heap.pop().expect("at least one node").1;

    // Depth-first to find leaf depths.
    let mut depth_of_symbol: Vec<(usize, usize)> = Vec::with_capacity(used.len());
    let mut stack = vec![(root, 0usize)];
    while let Some((idx, depth)) = stack.pop() {
        match nodes[idx].kind {
            NodeKind::Leaf(symbol) => depth_of_symbol.push((symbol, depth.max(1))),
            NodeKind::Internal(a, b) => {
                stack.push((a, depth + 1));
                stack.push((b, depth + 1));
            }
        }
    }

    // Clamp overlong codes to max_bits, then repair Kraft directly.
    for &(symbol, depth) in &depth_of_symbol {
        lengths[symbol] = depth.min(max_bits) as u8;
    }

    // Kraft sum in units of 2^-max_bits; the code is feasible iff k <= cap
    // and complete (required for DEFLATE dynamic blocks) iff k == cap.
    let cap = 1u64 << max_bits;
    let weight = |l: u8| 1u64 << (max_bits - l as usize);
    let mut k: u64 = used.iter().map(|&s| weight(lengths[s])).sum();

    // Phase 1 — oversubscribed: lengthen codes until k <= cap. Lengthening
    // the least frequent symbol costs the least compression; a symbol with
    // length < max_bits always exists while k > cap (if all codes were at
    // max_bits, k = used.len() <= cap by the alphabet-size assertion).
    if k > cap {
        let mut by_rarity: Vec<usize> = used.clone();
        by_rarity.sort_by(|&a, &b| freqs[a].cmp(&freqs[b]).then(a.cmp(&b)));
        'outer: while k > cap {
            for &s in &by_rarity {
                if (lengths[s] as usize) < max_bits {
                    k -= weight(lengths[s]) / 2; // halving the weight
                    lengths[s] += 1;
                    continue 'outer;
                }
            }
            unreachable!("feasible code must exist for n <= 2^max_bits");
        }
    }

    // Phase 2 — undersubscribed: shorten codes until k == cap. All weights
    // are multiples of the smallest weight (the longest code), so the gap is
    // always absorbable by shortening a longest code; prefer the most
    // frequent symbol among them for compression.
    while k < cap {
        let gap = cap - k;
        let candidate = used
            .iter()
            .copied()
            .filter(|&s| lengths[s] > 1 && weight(lengths[s]) <= gap)
            .max_by_key(|&s| (lengths[s], freqs[s], std::cmp::Reverse(s)));
        match candidate {
            Some(s) => {
                k += weight(lengths[s]); // doubling the weight
                lengths[s] -= 1;
            }
            None => break, // only length-1 codes remain; k == cap for n >= 2
        }
    }

    debug_assert!(kraft_ok(&lengths, max_bits));
    lengths
}

fn kraft_ok(lengths: &[u8], max_bits: usize) -> bool {
    let mut sum = 0u64;
    for &l in lengths {
        if l > 0 {
            sum += 1u64 << (max_bits - l as usize);
        }
    }
    sum <= 1u64 << max_bits
}

/// Canonical codes (bit-reversed, ready for the LSB-first writer) for a set
/// of code lengths: `codes[s]` is the reversed code of symbol `s`.
///
/// Follows RFC 1951 §3.2.2 exactly: codes of the same length are consecutive
/// integers in symbol order.
#[must_use]
pub fn assign_codes(lengths: &[u8]) -> Vec<u16> {
    let max = lengths.iter().copied().max().unwrap_or(0) as usize;
    let mut bl_count = vec![0u16; max + 1];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u16; max + 2];
    let mut code = 0u16;
    for bits in 1..=max {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                reverse_bits(u32::from(c), u32::from(l)) as u16
            }
        })
        .collect()
}

/// A flat Huffman decoding table: peek [`MAX_BITS`] bits, look up, consume.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// `entries[peeked_bits] = (symbol, code_length)`; length 0 = invalid.
    entries: Vec<(u16, u8)>,
    /// Table index width (= max code length used).
    table_bits: u32,
}

impl Decoder {
    /// Builds a decoder from code lengths.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Deflate`] when the lengths oversubscribe the code
    /// space (invalid dynamic header) or no symbol is used.
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, WireError> {
        let max = lengths.iter().copied().max().unwrap_or(0) as u32;
        if max == 0 {
            return Err(WireError::Deflate("huffman table with no codes".into()));
        }
        if max as usize > MAX_BITS {
            return Err(WireError::Deflate("code length exceeds 15 bits".into()));
        }
        // Oversubscription check (Kraft).
        let mut kraft = 0u64;
        for &l in lengths {
            if l > 0 {
                kraft += 1u64 << (MAX_BITS - l as usize);
            }
        }
        if kraft > 1u64 << MAX_BITS {
            return Err(WireError::Deflate("oversubscribed huffman code".into()));
        }

        let codes = assign_codes(lengths);
        let mut entries = vec![(0u16, 0u8); 1 << max];
        for (symbol, (&len, &code)) in lengths.iter().zip(codes.iter()).enumerate() {
            if len == 0 {
                continue;
            }
            let len32 = u32::from(len);
            // `code` is already bit-reversed; replicate across all indices
            // that share its low `len` bits.
            let step = 1usize << len32;
            let mut index = code as usize;
            while index < entries.len() {
                entries[index] = (symbol as u16, len);
                index += step;
            }
        }
        Ok(Self {
            entries,
            table_bits: max,
        })
    }

    /// Decodes one symbol from the reader.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Deflate`] on invalid codes or truncated input.
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16, WireError> {
        let peeked = reader.peek_bits(self.table_bits);
        let (symbol, len) = self.entries[peeked as usize];
        if len == 0 {
            return Err(WireError::Deflate("invalid huffman code".into()));
        }
        if !reader.consume_bits(u32::from(len)) {
            return Err(WireError::Deflate("truncated huffman code".into()));
        }
        Ok(symbol)
    }
}

/// The fixed literal/length code lengths of RFC 1951 §3.2.6.
#[must_use]
pub fn fixed_literal_lengths() -> Vec<u8> {
    let mut lengths = vec![0u8; 288];
    for (i, l) in lengths.iter_mut().enumerate() {
        *l = match i {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    lengths
}

/// The fixed distance code lengths (all 5 bits, 30 codes + 2 reserved).
#[must_use]
pub fn fixed_distance_lengths() -> Vec<u8> {
    vec![5u8; 32]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::bitio::BitWriter;

    #[test]
    fn single_symbol_gets_one_bit() {
        let mut freqs = vec![0u64; 10];
        freqs[4] = 100;
        let lengths = build_code_lengths(&freqs, MAX_BITS);
        assert_eq!(lengths[4], 1);
        assert!(lengths.iter().enumerate().all(|(i, &l)| i == 4 || l == 0));
    }

    #[test]
    fn empty_frequencies_yield_no_codes() {
        let lengths = build_code_lengths(&[0, 0, 0], MAX_BITS);
        assert!(lengths.iter().all(|&l| l == 0));
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let freqs = vec![100u64, 1, 1, 1];
        let lengths = build_code_lengths(&freqs, MAX_BITS);
        assert!(lengths[0] <= lengths[1]);
        assert!(lengths[0] <= lengths[3]);
    }

    #[test]
    fn length_limit_is_respected_on_skewed_input() {
        // Fibonacci-like frequencies force deep Huffman trees.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let next = a + b;
            a = b;
            b = next;
        }
        let lengths = build_code_lengths(&freqs, MAX_BITS);
        assert!(lengths.iter().all(|&l| l as usize <= MAX_BITS));
        // Kraft equality: complete code.
        let kraft: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (MAX_BITS - l as usize))
            .sum();
        assert_eq!(kraft, 1u64 << MAX_BITS);
    }

    #[test]
    fn canonical_codes_match_rfc_example() {
        // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) ->
        // codes 010,011,100,101,110,00,1110,1111 (before reversal).
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let codes = assign_codes(&lengths);
        let expected = [0b010u32, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(
                u32::from(codes[i]),
                reverse_bits(e, u32::from(lengths[i])),
                "symbol {i}"
            );
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let freqs = vec![5u64, 20, 1, 7, 0, 13];
        let lengths = build_code_lengths(&freqs, MAX_BITS);
        let codes = assign_codes(&lengths);
        let decoder = Decoder::from_lengths(&lengths).unwrap();

        let symbols = [1u16, 0, 5, 3, 1, 1, 2, 5, 0];
        let mut w = BitWriter::new();
        for &s in &symbols {
            w.write_bits(u32::from(codes[s as usize]), u32::from(lengths[s as usize]));
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(decoder.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn decoder_rejects_oversubscribed() {
        // Three symbols of length 1 oversubscribe.
        assert!(Decoder::from_lengths(&[1, 1, 1]).is_err());
    }

    #[test]
    fn decoder_rejects_empty() {
        assert!(Decoder::from_lengths(&[0, 0]).is_err());
    }

    #[test]
    fn fixed_tables_have_correct_shape() {
        let lit = fixed_literal_lengths();
        assert_eq!(lit.len(), 288);
        assert_eq!(lit[0], 8);
        assert_eq!(lit[144], 9);
        assert_eq!(lit[256], 7);
        assert_eq!(lit[280], 8);
        let dist = fixed_distance_lengths();
        assert_eq!(dist.len(), 32);
        assert!(dist.iter().all(|&l| l == 5));
        // Both must form valid decoders.
        Decoder::from_lengths(&lit).unwrap();
        Decoder::from_lengths(&dist).unwrap();
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn lengths_satisfy_kraft(freqs in proptest::collection::vec(0u64..1000, 1..64)) {
                let lengths = build_code_lengths(&freqs, MAX_BITS);
                let kraft: u64 = lengths
                    .iter()
                    .filter(|&&l| l > 0)
                    .map(|&l| 1u64 << (MAX_BITS - l as usize))
                    .sum();
                prop_assert!(kraft <= 1u64 << MAX_BITS);
                let used = freqs.iter().filter(|&&f| f > 0).count();
                if used >= 2 {
                    prop_assert_eq!(kraft, 1u64 << MAX_BITS); // complete code
                }
            }

            #[test]
            fn random_symbol_stream_round_trips(
                freqs in proptest::collection::vec(0u64..50, 2..40),
                picks in proptest::collection::vec(any::<usize>(), 1..200),
            ) {
                let used: Vec<usize> =
                    (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
                prop_assume!(used.len() >= 2);
                let lengths = build_code_lengths(&freqs, MAX_BITS);
                let codes = assign_codes(&lengths);
                let decoder = Decoder::from_lengths(&lengths).unwrap();

                let symbols: Vec<u16> =
                    picks.iter().map(|&p| used[p % used.len()] as u16).collect();
                let mut w = BitWriter::new();
                for &s in &symbols {
                    w.write_bits(
                        u32::from(codes[s as usize]),
                        u32::from(lengths[s as usize]),
                    );
                }
                let bytes = w.into_bytes();
                let mut r = BitReader::new(&bytes);
                for &s in &symbols {
                    prop_assert_eq!(decoder.decode(&mut r).unwrap(), s);
                }
            }
        }
    }
}
