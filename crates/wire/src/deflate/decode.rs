//! The DEFLATE decompressor (inflate): stored, fixed and dynamic blocks.

use super::bitio::BitReader;
use super::huffman::{fixed_distance_lengths, fixed_literal_lengths, Decoder};
use super::{CLC_ORDER, DIST_CODES, LENGTH_CODES};
use crate::error::WireError;

/// Hard cap on decompressed output, guarding against zip bombs.
const MAX_OUTPUT: usize = 1 << 30;

/// Decompresses a raw DEFLATE stream.
///
/// # Errors
///
/// Returns [`WireError::Deflate`] on malformed streams: bad block types,
/// invalid Huffman tables, out-of-window distances, truncation, or output
/// exceeding the 1 GiB safety cap.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, WireError> {
    let mut reader = BitReader::new(data);
    let mut out: Vec<u8> = Vec::new();
    loop {
        let bfinal = reader
            .read_bits(1)
            .ok_or_else(|| WireError::Deflate("missing block header".into()))?;
        let btype = reader
            .read_bits(2)
            .ok_or_else(|| WireError::Deflate("missing block type".into()))?;
        match btype {
            0b00 => inflate_stored(&mut reader, &mut out)?,
            0b01 => {
                let lit =
                    Decoder::from_lengths(&fixed_literal_lengths()).expect("fixed table is valid");
                let dist =
                    Decoder::from_lengths(&fixed_distance_lengths()).expect("fixed table is valid");
                inflate_block(&mut reader, &mut out, &lit, Some(&dist))?;
            }
            0b10 => {
                let (lit, dist) = read_dynamic_tables(&mut reader)?;
                inflate_block(&mut reader, &mut out, &lit, dist.as_ref())?;
            }
            _ => return Err(WireError::Deflate("reserved block type 11".into())),
        }
        if bfinal == 1 {
            break;
        }
    }
    Ok(out)
}

fn inflate_stored(reader: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<(), WireError> {
    reader.align_to_byte();
    let len = reader
        .read_bits(16)
        .ok_or_else(|| WireError::Deflate("truncated stored LEN".into()))? as u16;
    let nlen = reader
        .read_bits(16)
        .ok_or_else(|| WireError::Deflate("truncated stored NLEN".into()))? as u16;
    if len != !nlen {
        return Err(WireError::Deflate("stored LEN/NLEN mismatch".into()));
    }
    let bytes = reader
        .read_bytes(len as usize)
        .ok_or_else(|| WireError::Deflate("truncated stored payload".into()))?;
    guard_output(out.len() + bytes.len())?;
    out.extend_from_slice(&bytes);
    Ok(())
}

fn guard_output(len: usize) -> Result<(), WireError> {
    if len > MAX_OUTPUT {
        Err(WireError::Deflate("output exceeds safety cap".into()))
    } else {
        Ok(())
    }
}

fn read_dynamic_tables(
    reader: &mut BitReader<'_>,
) -> Result<(Decoder, Option<Decoder>), WireError> {
    let trunc = || WireError::Deflate("truncated dynamic header".into());
    let hlit = reader.read_bits(5).ok_or_else(trunc)? as usize + 257;
    let hdist = reader.read_bits(5).ok_or_else(trunc)? as usize + 1;
    let hclen = reader.read_bits(4).ok_or_else(trunc)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(WireError::Deflate(
            "dynamic header counts out of range".into(),
        ));
    }

    let mut clc_lengths = vec![0u8; 19];
    for &order in CLC_ORDER.iter().take(hclen) {
        clc_lengths[order] = reader.read_bits(3).ok_or_else(trunc)? as u8;
    }
    let clc = Decoder::from_lengths(&clc_lengths)?;

    // Decode hlit + hdist code lengths with the code-length code.
    let total = hlit + hdist;
    let mut lengths = Vec::with_capacity(total);
    while lengths.len() < total {
        let symbol = clc.decode(reader)?;
        match symbol {
            0..=15 => lengths.push(symbol as u8),
            16 => {
                let &prev = lengths
                    .last()
                    .ok_or_else(|| WireError::Deflate("repeat with no previous length".into()))?;
                let count = 3 + reader.read_bits(2).ok_or_else(trunc)?;
                for _ in 0..count {
                    lengths.push(prev);
                }
            }
            17 => {
                let count = 3 + reader.read_bits(3).ok_or_else(trunc)?;
                lengths.extend(std::iter::repeat_n(0, count as usize));
            }
            18 => {
                let count = 11 + reader.read_bits(7).ok_or_else(trunc)?;
                lengths.extend(std::iter::repeat_n(0, count as usize));
            }
            _ => return Err(WireError::Deflate("invalid code-length symbol".into())),
        }
    }
    if lengths.len() != total {
        return Err(WireError::Deflate(
            "code-length run overflows header".into(),
        ));
    }

    let (lit_lengths, dist_lengths) = lengths.split_at(hlit);
    if lit_lengths[256] == 0 {
        return Err(WireError::Deflate("end-of-block symbol has no code".into()));
    }
    let lit = Decoder::from_lengths(lit_lengths)?;
    // A block with no back-references legally has zero distance codes.
    let dist = if dist_lengths.iter().all(|&l| l == 0) {
        None
    } else {
        Some(Decoder::from_lengths(dist_lengths)?)
    };
    Ok((lit, dist))
}

fn inflate_block(
    reader: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    lit: &Decoder,
    dist: Option<&Decoder>,
) -> Result<(), WireError> {
    let trunc = || WireError::Deflate("truncated block body".into());
    loop {
        let symbol = lit.decode(reader)?;
        match symbol {
            0..=255 => {
                guard_output(out.len() + 1)?;
                out.push(symbol as u8);
            }
            256 => return Ok(()),
            257..=285 => {
                let (base, extra) = LENGTH_CODES[symbol as usize - 257];
                let len = u32::from(base)
                    + if extra > 0 {
                        reader.read_bits(u32::from(extra)).ok_or_else(trunc)?
                    } else {
                        0
                    };
                let dist_decoder = dist.ok_or_else(|| {
                    WireError::Deflate("match in block with no distance code".into())
                })?;
                let dsym = dist_decoder.decode(reader)?;
                if dsym >= 30 {
                    return Err(WireError::Deflate("invalid distance symbol".into()));
                }
                let (dbase, dextra) = DIST_CODES[dsym as usize];
                let distance = u32::from(dbase)
                    + if dextra > 0 {
                        reader.read_bits(u32::from(dextra)).ok_or_else(trunc)?
                    } else {
                        0
                    };
                let distance = distance as usize;
                if distance == 0 || distance > out.len() {
                    return Err(WireError::Deflate("distance beyond output start".into()));
                }
                guard_output(out.len() + len as usize)?;
                let start = out.len() - distance;
                for i in 0..len as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            _ => return Err(WireError::Deflate("invalid literal/length symbol".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::lz77::Effort;

    #[test]
    fn rejects_reserved_block_type() {
        // BFINAL=1, BTYPE=11.
        let err = decompress(&[0b0000_0111]).unwrap_err();
        assert!(matches!(err, WireError::Deflate(_)));
    }

    #[test]
    fn rejects_len_nlen_mismatch() {
        // BFINAL=1, BTYPE=00, then LEN=1, NLEN=0 (not complement).
        let bytes = [0b0000_0001u8, 0x01, 0x00, 0x00, 0x00, 0xAA];
        assert!(decompress(&bytes).is_err());
    }

    #[test]
    fn rejects_empty_input() {
        assert!(decompress(&[]).is_err());
    }

    #[test]
    fn rejects_truncated_streams() {
        let data = b"some reasonably long test payload, repeated: ".repeat(20);
        let packed = crate::deflate::compress(&data, Effort::DEFAULT);
        // Any strict prefix must fail, not panic or return wrong data.
        for cut in [1, packed.len() / 4, packed.len() / 2, packed.len() - 1] {
            let result = decompress(&packed[..cut]);
            if let Ok(out) = result {
                assert_ne!(out, data, "prefix of {cut} bytes decoded to full data");
            }
        }
    }

    #[test]
    fn fuzz_random_inputs_never_panic() {
        let mut state = 42u64;
        for round in 0..500 {
            let len = (round % 64) + 1;
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 56) as u8
                })
                .collect();
            let _ = decompress(&bytes); // must not panic
        }
    }

    #[test]
    fn multi_block_stored_stream() {
        let data = vec![7u8; 150_000]; // forces >2 stored chunks if stored used
        let packed = crate::deflate::compress(&data, Effort::DEFAULT);
        assert_eq!(decompress(&packed).unwrap(), data);
    }
}
