//! Error type for wire-format operations.

use std::error::Error;
use std::fmt;

/// Errors produced while encoding or decoding wire formats.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// JSON text failed to parse.
    Json {
        /// Byte offset of the failure in the input.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A DEFLATE stream was malformed.
    Deflate(String),
    /// A gzip frame was malformed (bad magic, flags, CRC or length).
    Gzip(String),
    /// A message had valid JSON but the wrong shape.
    Schema(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Json { offset, message } => {
                write!(f, "json parse error at byte {offset}: {message}")
            }
            WireError::Deflate(msg) => write!(f, "deflate error: {msg}"),
            WireError::Gzip(msg) => write!(f, "gzip error: {msg}"),
            WireError::Schema(msg) => write!(f, "message schema error: {msg}"),
        }
    }
}

impl Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = WireError::Json {
            offset: 12,
            message: "unexpected `}`".into(),
        };
        assert!(e.to_string().contains("byte 12"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + Error>() {}
        assert_send_sync::<WireError>();
    }
}
