//! Message schemas of the HyRec web API (Table 1 of the paper).
//!
//! Two messages cross the wire:
//!
//! * Server → widget: a [`PersonalizationJob`] answering
//!   `GET /online/?uid=<uid>` — the requester's profile plus the candidate
//!   set assembled by the sampler.
//! * Widget → server: a [`KnnUpdate`] via
//!   `GET /neighbors/?uid=<uid>&id0=<fid0>&id1=<fid1>&…` — the new KNN
//!   selection (with similarity scores so the server can track convergence).
//!
//! Both serialize to the JSON shapes the paper's Jackson stack would emit,
//! and both report their exact wire size raw and gzipped — the quantities of
//! Figure 10 and the client-bandwidth comparison of Section 5.6.

use crate::error::WireError;
use crate::gzip;
use crate::json::{object, JsonValue};
use hyrec_core::{CandidateSet, ItemId, Neighbor, Neighborhood, Profile, UserId};
use std::sync::Arc;

/// The personalization job the orchestrator ships to a widget (Section 3.1).
///
/// Profiles are shared handles (`Arc`): job assembly on the server borrows
/// the global profile table's allocations rather than copying item vectors,
/// and serialization reads through the same borrows.
#[derive(Debug, Clone, PartialEq)]
pub struct PersonalizationJob {
    /// Pseudonymous id of the requesting user.
    pub uid: UserId,
    /// Neighbourhood size the widget must select (system parameter `k`).
    pub k: usize,
    /// Number of items to recommend (system parameter `r`).
    pub r: usize,
    /// Job lease id issued by the scheduler (`0` = unleased; the field is
    /// then omitted from the wire shape, keeping the seed format intact).
    /// The widget must echo it in its [`KnnUpdate`].
    pub lease: u64,
    /// The leased user's refresh epoch; echoed with the lease so the
    /// server can recognize completions of superseded jobs.
    pub epoch: u64,
    /// The requesting user's own profile `P_u`.
    pub profile: Arc<Profile>,
    /// The candidate set `S_u` with full candidate profiles.
    pub candidates: CandidateSet,
}

impl PersonalizationJob {
    /// Serializes to the compact JSON wire shape.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let profile_json = |p: &Profile| -> JsonValue {
            object([
                ("liked", p.liked().map(|i| i.raw()).collect::<JsonValue>()),
                (
                    "disliked",
                    p.disliked().map(|i| i.raw()).collect::<JsonValue>(),
                ),
            ])
        };
        let mut fields = vec![
            ("uid", JsonValue::from(self.uid.raw())),
            ("k", JsonValue::from(self.k)),
            ("r", JsonValue::from(self.r)),
        ];
        if self.lease != 0 || self.epoch != 0 {
            fields.push(("lease", JsonValue::from(self.lease)));
            fields.push(("epoch", JsonValue::from(self.epoch)));
        }
        fields.push(("profile", profile_json(&self.profile)));
        fields.push((
            "candidates",
            self.candidates
                .iter()
                .map(|c| {
                    object([
                        ("uid", JsonValue::from(c.user.raw())),
                        ("profile", profile_json(&c.profile)),
                    ])
                })
                .collect::<JsonValue>(),
        ));
        object(fields)
    }

    /// Parses a job from its JSON wire shape.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Schema`] when required fields are missing or of
    /// the wrong type.
    pub fn from_json(value: &JsonValue) -> Result<Self, WireError> {
        let uid = field_u32(value, "uid")?;
        let k = field_u32(value, "k")? as usize;
        let r = field_u32(value, "r")? as usize;
        let lease = optional_u64(value, "lease")?;
        let epoch = optional_u64(value, "epoch")?;
        let profile = parse_profile(
            value
                .get("profile")
                .ok_or_else(|| WireError::Schema("missing `profile`".into()))?,
        )?;
        let mut candidates = CandidateSet::new();
        let list = value
            .get("candidates")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| WireError::Schema("missing `candidates` array".into()))?;
        for entry in list {
            // Chunk-assembling encoders pad the array with `null` sentinels
            // (see `hyrec_server::encoder`); skip them.
            if entry.is_null() {
                continue;
            }
            let cuid = field_u32(entry, "uid")?;
            let cprofile = parse_profile(
                entry
                    .get("profile")
                    .ok_or_else(|| WireError::Schema("candidate missing `profile`".into()))?,
            )?;
            candidates.insert(UserId(cuid), cprofile);
        }
        Ok(Self {
            uid: UserId(uid),
            k,
            r,
            lease,
            epoch,
            profile: Arc::new(profile),
            candidates,
        })
    }

    /// Serialized size in bytes, raw JSON (the `json` series of Figure 10).
    #[must_use]
    pub fn json_bytes(&self) -> usize {
        self.to_json().to_bytes().len()
    }

    /// Serialized size in bytes after gzip (the `gzip` series of Figure 10).
    #[must_use]
    pub fn gzip_bytes(&self) -> usize {
        gzip::compress(&self.to_json().to_bytes()).len()
    }

    /// Encodes to gzipped JSON bytes, the exact on-the-wire representation.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        gzip::compress(&self.to_json().to_bytes())
    }

    /// Decodes from gzipped JSON bytes.
    ///
    /// # Errors
    ///
    /// Propagates gzip, JSON and schema errors.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let raw = gzip::decompress(bytes)?;
        let text =
            String::from_utf8(raw).map_err(|_| WireError::Schema("message is not utf-8".into()))?;
        Self::from_json(&JsonValue::parse(&text)?)
    }
}

/// The KNN selection a widget reports back (Arrow 3 in Figure 1).
#[derive(Debug, Clone, PartialEq)]
pub struct KnnUpdate {
    /// Pseudonymous id of the reporting user.
    pub uid: UserId,
    /// The job lease this completion answers (`0` = unleased/legacy; the
    /// field is then omitted from the wire shape).
    pub lease: u64,
    /// The refresh epoch echoed from the job.
    pub epoch: u64,
    /// The new neighbourhood, ranked by descending similarity.
    pub neighbors: Vec<Neighbor>,
}

impl KnnUpdate {
    /// Builds an update from a neighbourhood.
    #[must_use]
    pub fn from_neighborhood(uid: UserId, hood: &Neighborhood) -> Self {
        Self {
            uid,
            lease: 0,
            epoch: 0,
            neighbors: hood.iter().copied().collect(),
        }
    }

    /// Stamps the lease credentials a widget must echo from its job.
    #[must_use]
    pub fn with_lease(mut self, lease: u64, epoch: u64) -> Self {
        self.lease = lease;
        self.epoch = epoch;
        self
    }

    /// Converts back into a [`Neighborhood`].
    #[must_use]
    pub fn to_neighborhood(&self) -> Neighborhood {
        Neighborhood::from_neighbors(self.neighbors.iter().copied())
    }

    /// Serializes to the compact JSON wire shape.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![("uid", JsonValue::from(self.uid.raw()))];
        if self.lease != 0 || self.epoch != 0 {
            fields.push(("lease", JsonValue::from(self.lease)));
            fields.push(("epoch", JsonValue::from(self.epoch)));
        }
        fields.push((
            "neighbors",
            self.neighbors
                .iter()
                .map(|n| {
                    object([
                        ("uid", JsonValue::from(n.user.raw())),
                        ("sim", JsonValue::from(quantize(n.similarity))),
                    ])
                })
                .collect::<JsonValue>(),
        ));
        object(fields)
    }

    /// Parses an update from its JSON wire shape.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Schema`] on missing or mistyped fields.
    pub fn from_json(value: &JsonValue) -> Result<Self, WireError> {
        let uid = field_u32(value, "uid")?;
        let lease = optional_u64(value, "lease")?;
        let epoch = optional_u64(value, "epoch")?;
        let list = value
            .get("neighbors")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| WireError::Schema("missing `neighbors` array".into()))?;
        let mut neighbors = Vec::with_capacity(list.len());
        for entry in list {
            let nuid = field_u32(entry, "uid")?;
            let sim = entry
                .get("sim")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| WireError::Schema("neighbor missing `sim`".into()))?;
            neighbors.push(Neighbor {
                user: UserId(nuid),
                similarity: sim,
            });
        }
        Ok(Self {
            uid: UserId(uid),
            lease,
            epoch,
            neighbors,
        })
    }

    /// Serialized size in bytes, raw JSON.
    #[must_use]
    pub fn json_bytes(&self) -> usize {
        self.to_json().to_bytes().len()
    }

    /// Encodes to gzipped JSON bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        gzip::compress(&self.to_json().to_bytes())
    }

    /// Decodes from gzipped JSON bytes.
    ///
    /// # Errors
    ///
    /// Propagates gzip, JSON and schema errors.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let raw = gzip::decompress(bytes)?;
        let text =
            String::from_utf8(raw).map_err(|_| WireError::Schema("message is not utf-8".into()))?;
        Self::from_json(&JsonValue::parse(&text)?)
    }
}

/// Rounds similarity to 6 decimal digits so the wire shape is compact and
/// platform-independent (f64 formatting differences never leak into bytes).
fn quantize(sim: f64) -> f64 {
    (sim * 1e6).round() / 1e6
}

/// Optional non-negative integer field: absent ⇒ `0`, present-but-mistyped
/// ⇒ schema error (a lease must never be silently dropped).
fn optional_u64(value: &JsonValue, key: &str) -> Result<u64, WireError> {
    match value.get(key) {
        None => Ok(0),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| WireError::Schema(format!("invalid `{key}`"))),
    }
}

fn field_u32(value: &JsonValue, key: &str) -> Result<u32, WireError> {
    value
        .get(key)
        .and_then(JsonValue::as_u64)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| WireError::Schema(format!("missing or invalid `{key}`")))
}

fn parse_profile(value: &JsonValue) -> Result<Profile, WireError> {
    let items = |key: &str| -> Result<Vec<ItemId>, WireError> {
        value
            .get(key)
            .and_then(JsonValue::as_array)
            .ok_or_else(|| WireError::Schema(format!("profile missing `{key}`")))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .map(ItemId)
                    .ok_or_else(|| WireError::Schema("non-integer item id".into()))
            })
            .collect()
    };
    Ok(Profile::from_votes(items("liked")?, items("disliked")?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_job() -> PersonalizationJob {
        let mut candidates = CandidateSet::new();
        candidates.insert(UserId(10), Profile::from_liked([1u32, 2, 3]));
        candidates.insert(UserId(11), Profile::from_votes([4u32], [5u32]));
        PersonalizationJob {
            uid: UserId(1),
            k: 10,
            r: 5,
            lease: 0,
            epoch: 0,
            profile: Profile::from_liked([1u32, 9]).into(),
            candidates,
        }
    }

    #[test]
    fn job_json_round_trip() {
        let job = sample_job();
        let back = PersonalizationJob::from_json(&job.to_json()).unwrap();
        assert_eq!(back, job);
    }

    #[test]
    fn job_wire_round_trip() {
        let job = sample_job();
        let bytes = job.encode();
        let back = PersonalizationJob::decode(&bytes).unwrap();
        assert_eq!(back, job);
    }

    #[test]
    fn gzip_is_smaller_for_real_jobs() {
        // Representative job: 120 candidates × 100-item profiles.
        let mut candidates = CandidateSet::new();
        for u in 0..120u32 {
            let profile = Profile::from_liked((0..100u32).map(|i| (u * 31 + i * 17) % 10_000));
            candidates.insert(UserId(u), profile);
        }
        let job = PersonalizationJob {
            uid: UserId(1),
            k: 10,
            r: 10,
            lease: 0,
            epoch: 0,
            profile: Profile::from_liked(0u32..100).into(),
            candidates,
        };
        let raw = job.json_bytes();
        let packed = job.gzip_bytes();
        assert!(packed < raw / 2, "gzip {packed} vs raw {raw}");
    }

    #[test]
    fn update_round_trips() {
        let update = KnnUpdate {
            uid: UserId(3),
            lease: 0,
            epoch: 0,
            neighbors: vec![
                Neighbor {
                    user: UserId(8),
                    similarity: 0.75,
                },
                Neighbor {
                    user: UserId(9),
                    similarity: 0.5,
                },
            ],
        };
        let back = KnnUpdate::decode(&update.encode()).unwrap();
        assert_eq!(back, update);
        assert_eq!(back.to_neighborhood().len(), 2);
    }

    #[test]
    fn update_similarity_is_quantized() {
        let update = KnnUpdate {
            uid: UserId(1),
            lease: 0,
            epoch: 0,
            neighbors: vec![Neighbor {
                user: UserId(2),
                similarity: 1.0 / 3.0,
            }],
        };
        let back = KnnUpdate::from_json(&update.to_json()).unwrap();
        assert!((back.neighbors[0].similarity - 0.333_333).abs() < 1e-9);
    }

    #[test]
    fn leased_job_round_trips_and_unleased_wire_shape_is_unchanged() {
        // Unleased jobs must keep the seed wire shape (no lease/epoch
        // keys), so pre-scheduler clients and byte-identity fixtures hold.
        let unleased = sample_job();
        let text = unleased.to_json().to_string();
        assert!(!text.contains("lease"), "unleased job leaked lease field");
        assert!(!text.contains("epoch"), "unleased job leaked epoch field");

        let mut leased = sample_job();
        leased.lease = 42;
        leased.epoch = 7;
        let text = leased.to_json().to_string();
        assert!(text.contains("\"lease\":42"));
        assert!(text.contains("\"epoch\":7"));
        let back = PersonalizationJob::decode(&leased.encode()).unwrap();
        assert_eq!(back, leased);
    }

    #[test]
    fn leased_update_round_trips_and_rejects_mistyped_lease() {
        let update = KnnUpdate {
            uid: UserId(3),
            lease: 9,
            epoch: 2,
            neighbors: vec![Neighbor {
                user: UserId(8),
                similarity: 0.75,
            }],
        };
        let text = update.to_json().to_string();
        assert!(text.contains("\"lease\":9"));
        let back = KnnUpdate::decode(&update.encode()).unwrap();
        assert_eq!(back, update);

        // An unleased update stays on the seed shape.
        let plain = KnnUpdate::from_neighborhood(UserId(1), &update.to_neighborhood());
        assert!(!plain.to_json().to_string().contains("lease"));
        // with_lease stamps credentials.
        let stamped = plain.clone().with_lease(5, 1);
        assert_eq!((stamped.lease, stamped.epoch), (5, 1));

        // A mistyped lease is a schema error, never silently dropped.
        let bad = JsonValue::parse(r#"{"uid":1,"lease":"x","neighbors":[]}"#).unwrap();
        assert!(KnnUpdate::from_json(&bad).is_err());
    }

    #[test]
    fn schema_errors_are_descriptive() {
        let bad = JsonValue::parse(r#"{"uid": "not a number"}"#).unwrap();
        let err = PersonalizationJob::from_json(&bad).unwrap_err();
        assert!(err.to_string().contains("uid"));

        let bad = JsonValue::parse(r#"{"uid": 1, "k": 1, "r": 1}"#).unwrap();
        assert!(PersonalizationJob::from_json(&bad).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(PersonalizationJob::decode(b"not gzip").is_err());
        assert!(KnnUpdate::decode(&[]).is_err());
        // Valid gzip of invalid JSON.
        let bytes = gzip::compress(b"{nope}");
        assert!(KnnUpdate::decode(&bytes).is_err());
        // Valid gzip of non-utf8.
        let bytes = gzip::compress(&[0xFF, 0xFE, 0x00]);
        assert!(KnnUpdate::decode(&bytes).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_profile() -> impl Strategy<Value = Profile> {
            (
                proptest::collection::vec(0u32..5000, 0..40),
                proptest::collection::vec(0u32..5000, 0..10),
            )
                .prop_map(|(liked, disliked)| Profile::from_votes(liked, disliked))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn arbitrary_jobs_round_trip(
                uid in 0u32..1000,
                k in 1usize..30,
                r in 1usize..20,
                profile in arb_profile(),
                cands in proptest::collection::vec((0u32..500, arb_profile()), 0..20),
            ) {
                let candidates: CandidateSet = cands
                    .into_iter()
                    .map(|(u, p)| (UserId(u), p))
                    .collect();
                let job = PersonalizationJob {
                    uid: UserId(uid),
                    k,
                    r,
                    lease: 0,
                    epoch: 0,
                    profile: profile.into(),
                    candidates,
                };
                let back = PersonalizationJob::decode(&job.encode()).unwrap();
                prop_assert_eq!(back, job);
            }
        }
    }
}
