//! gzip (RFC 1952) framing over our DEFLATE implementation.
//!
//! The paper's server compresses JSON messages "on the fly" with gzip and
//! browsers decompress natively (Section 4.2). This module provides the same
//! frame: 10-byte header, DEFLATE payload, CRC-32 and length trailer.

use crate::deflate::{self, lz77::Effort};
use crate::error::WireError;

/// CRC-32 (IEEE 802.3) used by the gzip trailer; see [`crate::crc`].
pub use crate::crc::crc32;

/// The fixed gzip header we emit: deflate method, no flags, no mtime,
/// "unknown" OS — byte-stable so message sizes are reproducible. Public so
/// chunk-assembling encoders (`hyrec_server::encoder`) can frame members
/// themselves.
pub const HEADER: [u8; 10] = [0x1F, 0x8B, 0x08, 0, 0, 0, 0, 0, 0, 0xFF];

/// Compresses `data` into a gzip member with default effort.
#[must_use]
pub fn compress(data: &[u8]) -> Vec<u8> {
    compress_with(data, Effort::DEFAULT)
}

/// Compresses `data` into a gzip member with explicit matcher effort.
#[must_use]
pub fn compress_with(data: &[u8], effort: Effort) -> Vec<u8> {
    let body = deflate::compress(data, effort);
    let mut out = Vec::with_capacity(HEADER.len() + body.len() + 8);
    out.extend_from_slice(&HEADER);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// Decompresses a single-member gzip frame, verifying CRC-32 and length.
///
/// # Errors
///
/// Returns [`WireError::Gzip`] on bad magic/method/flags or trailer
/// mismatches, and [`WireError::Deflate`] if the payload is malformed.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, WireError> {
    if data.len() < 18 {
        return Err(WireError::Gzip(
            "frame shorter than header + trailer".into(),
        ));
    }
    if data[0] != 0x1F || data[1] != 0x8B {
        return Err(WireError::Gzip("bad magic bytes".into()));
    }
    if data[2] != 0x08 {
        return Err(WireError::Gzip(format!("unsupported method {}", data[2])));
    }
    let flags = data[3];
    let mut offset = 10usize;
    // FEXTRA
    if flags & 0x04 != 0 {
        if data.len() < offset + 2 {
            return Err(WireError::Gzip("truncated FEXTRA".into()));
        }
        let xlen = u16::from_le_bytes([data[offset], data[offset + 1]]) as usize;
        offset += 2 + xlen;
    }
    // FNAME, FCOMMENT: zero-terminated strings.
    for flag in [0x08u8, 0x10] {
        if flags & flag != 0 {
            let end = data[offset..]
                .iter()
                .position(|&b| b == 0)
                .ok_or_else(|| WireError::Gzip("unterminated name/comment".into()))?;
            offset += end + 1;
        }
    }
    // FHCRC
    if flags & 0x02 != 0 {
        offset += 2;
    }
    if data.len() < offset + 8 {
        return Err(WireError::Gzip("truncated payload".into()));
    }
    let payload = &data[offset..data.len() - 8];
    let out = deflate::decompress(payload)?;
    let trailer = &data[data.len() - 8..];
    let expect_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let expect_len = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
    if crc32(&out) != expect_crc {
        return Err(WireError::Gzip("crc mismatch".into()));
    }
    if out.len() as u32 != expect_len {
        return Err(WireError::Gzip("length mismatch".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trip() {
        let data = b"{\"uid\":7,\"profile\":[1,2,3]}".repeat(50);
        let packed = compress(&data);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn empty_round_trip() {
        let packed = compress(b"");
        assert_eq!(decompress(&packed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn detects_corruption() {
        let data = b"sensitive payload that must be integrity checked".repeat(10);
        let mut packed = compress(&data);
        // Flip a payload byte: either inflate fails or the CRC catches it.
        let middle = packed.len() / 2;
        packed[middle] ^= 0xFF;
        assert!(decompress(&packed).is_err());
    }

    #[test]
    fn detects_bad_magic_and_short_input() {
        assert!(decompress(&[0u8; 4]).is_err());
        let mut packed = compress(b"x");
        packed[0] = 0;
        assert!(decompress(&packed).is_err());
    }

    #[test]
    fn rejects_wrong_method() {
        let mut packed = compress(b"x");
        packed[2] = 0x07;
        assert!(decompress(&packed).is_err());
    }

    #[test]
    fn accepts_fname_flag() {
        // Hand-build a frame with FNAME set.
        let inner = compress(b"hello world hello world");
        let mut framed = Vec::new();
        framed.extend_from_slice(&[0x1F, 0x8B, 0x08, 0x08, 0, 0, 0, 0, 0, 0xFF]);
        framed.extend_from_slice(b"file.json\0");
        framed.extend_from_slice(&inner[10..]); // deflate body + trailer
        assert_eq!(decompress(&framed).unwrap(), b"hello world hello world");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn gzip_round_trips(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
                let packed = compress(&data);
                prop_assert_eq!(decompress(&packed).unwrap(), data);
            }

            #[test]
            fn decompress_never_panics(data in proptest::collection::vec(any::<u8>(), 0..200)) {
                let _ = decompress(&data);
            }
        }
    }
}
