//! # hyrec-wire
//!
//! The wire substrate of the HyRec reproduction, built entirely from scratch:
//!
//! * [`json`] — a JSON value model, serializer and parser. The paper's
//!   implementation exchanges Jackson-produced JSON between the J2EE server
//!   and the jQuery widget (Section 4.2); our codec produces byte-identical
//!   shapes so message-size measurements (Figure 10) are faithful.
//! * [`deflate`] — a DEFLATE (RFC 1951) compressor and decompressor: LZ77
//!   hash-chain matching plus fixed and dynamic Huffman blocks.
//! * [`gzip`] — gzip (RFC 1952) framing with CRC-32, the on-the-fly
//!   `Content-Encoding: gzip` the paper's server applies to every response.
//! * [`messages`] — the personalization-job and KNN-update schemas of the
//!   HyRec web API (Table 1), with JSON round-trips and exact byte
//!   accounting for the bandwidth experiments.
//!
//! ## Why from scratch?
//!
//! The evaluation hinges on wire-level quantities: "the size of JSON messages
//! grows almost linearly with the size of profiles … compression of around
//! 71%" (Section 5.5). Owning the codec and the compressor means those
//! numbers come out of *this* code, not a black-box dependency, and the
//! widget-side decoder stays trivially `wasm32`-compatible.
//!
//! ```
//! use hyrec_wire::json::JsonValue;
//! use hyrec_wire::gzip;
//!
//! let doc = JsonValue::parse(r#"{"uid": 3, "profile": [1, 2, 3]}"#)?;
//! assert_eq!(doc.get("uid").and_then(JsonValue::as_u64), Some(3));
//!
//! let raw = doc.to_string().into_bytes();
//! let packed = gzip::compress(&raw);
//! assert_eq!(gzip::decompress(&packed)?, raw);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod deflate;
pub mod error;
pub mod gzip;
pub mod json;
pub mod messages;

pub use error::WireError;
pub use json::JsonValue;
pub use messages::{KnnUpdate, PersonalizationJob};
