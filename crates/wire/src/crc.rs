//! CRC-32 (IEEE) with zlib-style combination.
//!
//! [`crc32`] is the table-driven checksum the gzip trailer uses.
//! [`crc32_combine`] merges the CRCs of two concatenated byte ranges
//! without touching the bytes — the GF(2) matrix technique from zlib — and
//! [`ShiftOp`] caches the per-length operator so a server can combine a
//! request's worth of cached fragments in nanoseconds each. This is what
//! makes the fragment-cached job encoder viable.

/// CRC-32 polynomial (reflected).
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    POLY ^ (crc >> 1)
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// Computes the CRC-32 of `data` (IEEE 802.3, as used by gzip).
///
/// ```
/// assert_eq!(hyrec_wire::crc::crc32(b"123456789"), 0xCBF4_3926);
/// ```
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming form: feed `state` (start from `0xFFFF_FFFF`, finalize by
/// xor with `0xFFFF_FFFF`).
#[must_use]
pub fn crc32_update(state: u32, data: &[u8]) -> u32 {
    let table = table();
    let mut crc = state;
    for &byte in data {
        crc = table[((crc ^ u32::from(byte)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// A 32×32 GF(2) matrix as 32 column vectors.
type Matrix = [u32; 32];

fn matrix_times(mat: &Matrix, mut vec: u32) -> u32 {
    let mut sum = 0u32;
    let mut i = 0usize;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

fn matrix_square(square: &mut Matrix, mat: &Matrix) {
    for n in 0..32 {
        square[n] = matrix_times(mat, mat[n]);
    }
}

fn matrix_mul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = [0u32; 32];
    for n in 0..32 {
        out[n] = matrix_times(a, b[n]);
    }
    out
}

fn identity() -> Matrix {
    let mut m = [0u32; 32];
    for (n, entry) in m.iter_mut().enumerate() {
        *entry = 1u32 << n;
    }
    m
}

/// Runs the zlib combine loop, optionally accumulating the total operator.
fn combine_impl(mut crc1: u32, len2: u64, accumulate: Option<&mut Matrix>) -> u32 {
    if len2 == 0 {
        return crc1;
    }
    let mut even: Matrix = [0u32; 32];
    let mut odd: Matrix = [0u32; 32];

    // Operator for one zero bit.
    odd[0] = POLY;
    let mut row = 1u32;
    for entry in odd.iter_mut().skip(1) {
        *entry = row;
        row <<= 1;
    }
    matrix_square(&mut even, &odd); // two zero bits
    matrix_square(&mut odd, &even); // four zero bits

    let mut acc = accumulate.map(|m| (m, identity()));
    let mut len2 = len2;
    loop {
        matrix_square(&mut even, &odd); // eight, thirty-two, ... zero bits
        if len2 & 1 != 0 {
            crc1 = matrix_times(&even, crc1);
            if let Some((_, total)) = acc.as_mut() {
                *total = matrix_mul(&even, total);
            }
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
        matrix_square(&mut odd, &even);
        if len2 & 1 != 0 {
            crc1 = matrix_times(&odd, crc1);
            if let Some((_, total)) = acc.as_mut() {
                *total = matrix_mul(&odd, total);
            }
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
    }
    if let Some((out, total)) = acc {
        *out = total;
    }
    crc1
}

/// Combines `crc32(a)` and `crc32(b)` into `crc32(a ++ b)` where
/// `len2 = b.len()`.
///
/// ```
/// use hyrec_wire::crc::{crc32, crc32_combine};
/// let (a, b) = (b"hello ".as_slice(), b"world".as_slice());
/// let combined = crc32_combine(crc32(a), crc32(b), b.len() as u64);
/// assert_eq!(combined, crc32(b"hello world"));
/// ```
#[must_use]
pub fn crc32_combine(crc1: u32, crc2: u32, len2: u64) -> u32 {
    combine_impl(crc1, len2, None) ^ crc2
}

/// A cached "advance CRC past `len` zero bytes" operator.
///
/// Computing the operator costs a few microseconds; applying it costs a
/// 32-step matrix-vector product (~tens of nanoseconds), so callers that
/// repeatedly append the *same* fragment amortize the cost to nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShiftOp {
    matrix: Matrix,
    len: u64,
}

impl ShiftOp {
    /// Builds the operator for appending `len` bytes.
    #[must_use]
    pub fn for_len(len: u64) -> Self {
        let mut matrix = identity();
        if len > 0 {
            let _ = combine_impl(0, len, Some(&mut matrix));
        }
        Self { matrix, len }
    }

    /// The fragment length this operator advances past.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True for the zero-length (identity) operator.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `crc32(a ++ b)` given `crc1 = crc32(a)`, `crc2 = crc32(b)` and
    /// `self = ShiftOp::for_len(b.len())`.
    #[must_use]
    pub fn combine(&self, crc1: u32, crc2: u32) -> u32 {
        if self.len == 0 {
            // Appending zero bytes: crc2 is crc32(b"") == 0 by definition.
            return crc1;
        }
        matrix_times(&self.matrix, crc1) ^ crc2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"some bytes fed in two chunks";
        let mut state = 0xFFFF_FFFFu32;
        state = crc32_update(state, &data[..10]);
        state = crc32_update(state, &data[10..]);
        assert_eq!(state ^ 0xFFFF_FFFF, crc32(data));
    }

    #[test]
    fn combine_matches_direct() {
        let a = b"first fragment with some length".as_slice();
        let b = b"and a second one".as_slice();
        let combined = crc32_combine(crc32(a), crc32(b), b.len() as u64);
        let direct = crc32(&[a, b].concat());
        assert_eq!(combined, direct);
    }

    #[test]
    fn combine_zero_length_is_identity() {
        let a = b"anything";
        assert_eq!(crc32_combine(crc32(a), crc32(b""), 0), crc32(a));
    }

    #[test]
    fn shift_op_matches_combine() {
        let a = b"0123456789abcdef".as_slice();
        let b = b"ghijklmnop".as_slice();
        let op = ShiftOp::for_len(b.len() as u64);
        assert_eq!(
            op.combine(crc32(a), crc32(b)),
            crc32_combine(crc32(a), crc32(b), b.len() as u64)
        );
        assert_eq!(op.len(), b.len() as u64);
    }

    #[test]
    fn shift_op_chains_many_fragments() {
        let fragments: Vec<Vec<u8>> = (0..20u8)
            .map(|i| {
                (0..=i)
                    .map(|j| j.wrapping_mul(37).wrapping_add(i))
                    .collect()
            })
            .collect();
        let mut crc = crc32(b"");
        let mut raw = Vec::new();
        for fragment in &fragments {
            let op = ShiftOp::for_len(fragment.len() as u64);
            crc = op.combine(crc, crc32(fragment));
            raw.extend_from_slice(fragment);
        }
        assert_eq!(crc, crc32(&raw));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn combine_is_correct(
                a in proptest::collection::vec(any::<u8>(), 0..200),
                b in proptest::collection::vec(any::<u8>(), 0..200),
            ) {
                let combined = crc32_combine(crc32(&a), crc32(&b), b.len() as u64);
                prop_assert_eq!(combined, crc32(&[a, b].concat()));
            }
        }
    }
}
