//! # hyrec
//!
//! Facade crate for the **HyRec** reproduction — *"HyRec: Leveraging
//! Browsers for Scalable Recommenders"* (Boutet, Frey, Guerraoui,
//! Kermarrec, Patra; Middleware 2014).
//!
//! HyRec is a hybrid user-based collaborative-filtering recommender: a
//! central server owns the global profile/KNN tables and *offloads* the
//! expensive per-user computations (KNN selection, item recommendation) to
//! the users' web browsers via sampled *personalization jobs*.
//!
//! This crate re-exports the whole workspace under one name:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`core`] | `hyrec-core` | profiles, similarity, Algorithms 1–2, tables |
//! | [`wire`] | `hyrec-wire` | JSON codec, DEFLATE/gzip, message schemas |
//! | [`client`] | `hyrec-client` | the browser widget as a compute kernel |
//! | [`server`] | `hyrec-server` | sampler, orchestrator, baselines |
//! | [`gossip`] | `hyrec-gossip` | the fully decentralized (P2P) baseline |
//! | [`datasets`] | `hyrec-datasets` | Table 2-calibrated trace generators |
//! | [`sim`] | `hyrec-sim` | replay, quality, cost, device, load, churn harnesses |
//! | [`http`] | `hyrec-http` | HTTP/1.1 stack + the Table 1 web API |
//! | [`sched`] | `hyrec-sched` | job-lifecycle scheduler: leases, churn recovery, staleness |
//!
//! ## Quickstart
//!
//! ```
//! use hyrec::prelude::*;
//!
//! // Server side: users rate items, the server orchestrates.
//! // (k = 4: each of the four taste groups below has 4 same-group peers.)
//! let server = HyRecServer::builder().k(4).r(5).seed(1).build();
//! for u in 0..20u32 {
//!     for i in 0..6u32 {
//!         server.record(UserId(u), ItemId((u % 4) * 100 + i), Vote::Like);
//!     }
//! }
//!
//! // Browser side: the widget runs the personalization job.
//! let widget = Widget::new();
//! for _ in 0..3 {
//!     for u in 0..20u32 {
//!         let job = server.build_job(UserId(u));
//!         let out = widget.run_job(&job);
//!         server.apply_update(&out.update);
//!     }
//! }
//! assert!(server.average_view_similarity() > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hyrec_client as client;
pub use hyrec_core as core;
pub use hyrec_datasets as datasets;
pub use hyrec_gossip as gossip;
pub use hyrec_http as http;
pub use hyrec_sched as sched;
pub use hyrec_server as server;
pub use hyrec_sim as sim;
pub use hyrec_wire as wire;

/// The items most applications need.
pub mod prelude {
    pub use hyrec_client::{Widget, WidgetOutput};
    pub use hyrec_core::prelude::*;
    pub use hyrec_datasets::{DatasetSpec, TraceGenerator};
    pub use hyrec_sched::{SchedConfig, Scheduler};
    pub use hyrec_server::{HyRecConfig, HyRecServer, JobEncoder, ScheduledServer};
    pub use hyrec_wire::{KnnUpdate, PersonalizationJob};
}
