//! Wire-format interoperability: our gzip must interoperate with the
//! system `gzip` binary (browsers natively decompress the paper's
//! messages, so we cannot afford a dialect), and the chunked encoder's
//! streams must be plain RFC-1951/1952 to any decoder.

use hyrec::prelude::*;
use hyrec::wire::deflate::{self, lz77::Effort, STREAM_TERMINATOR};
use hyrec::wire::{crc, gzip};
use std::io::Write;
use std::process::{Command, Stdio};

fn system_gzip_available() -> bool {
    Command::new("gzip")
        .arg("--version")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

fn sample_payload() -> Vec<u8> {
    let server = HyRecServer::builder()
        .k(8)
        .anonymize_users(false)
        .seed(31)
        .build();
    for u in 0..120u32 {
        for i in 0..60u32 {
            server.record(UserId(u), ItemId((u * 37 + i * 13) % 5_000), Vote::Like);
        }
    }
    let widget = Widget::new();
    for u in 0..120u32 {
        let job = server.build_job(UserId(u));
        server.apply_update(&widget.run_job(&job).update);
    }
    server.build_job(UserId(7)).to_json().to_bytes()
}

/// `zcat` must decode our gzip output byte-for-byte.
#[test]
fn system_gzip_decodes_our_output() {
    if !system_gzip_available() {
        eprintln!("skipping: no system gzip");
        return;
    }
    let payload = sample_payload();
    for effort in [Effort::FAST, Effort::DEFAULT, Effort::BEST] {
        let packed = gzip::compress_with(&payload, effort);
        let mut child = Command::new("gzip")
            .args(["-dc"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn gzip");
        child.stdin.as_mut().unwrap().write_all(&packed).unwrap();
        let out = child.wait_with_output().expect("gzip runs");
        assert!(out.status.success(), "gzip rejected our frame ({effort:?})");
        assert_eq!(out.stdout, payload, "payload mismatch ({effort:?})");
    }
}

/// Our decoder must accept system-gzip output.
#[test]
fn we_decode_system_gzip_output() {
    if !system_gzip_available() {
        eprintln!("skipping: no system gzip");
        return;
    }
    let payload = sample_payload();
    for level in ["-1", "-6", "-9"] {
        let mut child = Command::new("gzip")
            .args([level, "-c"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn gzip");
        child.stdin.as_mut().unwrap().write_all(&payload).unwrap();
        let out = child.wait_with_output().expect("gzip runs");
        let decoded = gzip::decompress(&out.stdout).expect("our decoder accepts");
        assert_eq!(decoded, payload, "level {level}");
    }
}

/// The chunk-assembled streams of the fragment encoder are plain DEFLATE:
/// the system decoder must accept a member built from sync-flushed chunks.
#[test]
fn chunked_streams_are_standard_deflate() {
    let parts: [&[u8]; 4] = [b"alpha,", b"beta,", b"", b"gamma"];
    let mut stream = Vec::new();
    stream.extend_from_slice(&gzip::HEADER);
    let mut combined_crc = crc::crc32(b"");
    let mut total = 0u64;
    for part in parts {
        stream.extend_from_slice(&deflate::compress_chunk(part, Effort::FAST));
        combined_crc = crc::crc32_combine(combined_crc, crc::crc32(part), part.len() as u64);
        total += part.len() as u64;
    }
    stream.extend_from_slice(&STREAM_TERMINATOR);
    stream.extend_from_slice(&combined_crc.to_le_bytes());
    stream.extend_from_slice(&(total as u32).to_le_bytes());

    // Our own decoder accepts it…
    assert_eq!(gzip::decompress(&stream).unwrap(), b"alpha,beta,gamma");

    // …and so does the system one.
    if system_gzip_available() {
        let mut child = Command::new("gzip")
            .args(["-dc"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn gzip");
        child.stdin.as_mut().unwrap().write_all(&stream).unwrap();
        let out = child.wait_with_output().expect("gzip runs");
        assert!(out.status.success(), "system gzip rejected chunked stream");
        assert_eq!(out.stdout, b"alpha,beta,gamma");
    }
}

/// Torture the JSON path with hostile item sets and ids through the whole
/// job pipeline (encode → decode → widget → update → decode).
#[test]
fn hostile_ids_survive_the_full_pipeline() {
    let mut candidates = hyrec::core::CandidateSet::new();
    candidates.insert(
        UserId(u32::MAX),
        Profile::from_liked([0u32, 1, u32::MAX - 1, u32::MAX]),
    );
    candidates.insert(UserId(0), Profile::from_votes([u32::MAX], [0u32]));
    let job = PersonalizationJob {
        uid: UserId(u32::MAX - 7),
        k: 2,
        r: 3,
        lease: 0,
        epoch: 0,
        profile: Profile::from_liked([42u32]).into(),
        candidates,
    };
    let bytes = job.encode();
    let widget = Widget::new();
    let (out, update_bytes) = widget.run_encoded_job(&bytes).expect("pipeline survives");
    let update = KnnUpdate::decode(&update_bytes).expect("update decodes");
    assert_eq!(update.uid, UserId(u32::MAX - 7));
    assert_eq!(update.neighbors.len(), out.update.neighbors.len());
}
