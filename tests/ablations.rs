//! Ablations of the design choices DESIGN.md calls out: the sampler's
//! three legs, offline-user leverage, and compression effort.

use hyrec::prelude::*;
use hyrec::server::sampler::{NoRandomSampler, RandomOnlySampler};
use hyrec_server::HyRecServer;

fn populate(server: &HyRecServer, users: u32) {
    for u in 0..users {
        for i in 0..8u32 {
            server.record(UserId(u), ItemId((u % 5) * 100 + i), Vote::Like);
        }
    }
}

fn run_rounds(server: &HyRecServer, users: u32, rounds: usize) -> f64 {
    let widget = Widget::new();
    for _ in 0..rounds {
        for u in 0..users {
            let job = server.build_job(UserId(u));
            let out = widget.run_job(&job);
            server.apply_update(&out.update);
        }
    }
    server.average_view_similarity()
}

/// Section 3.1's justification for the sampler's structure: the 2-hop
/// feedback leg accelerates convergence beyond pure random sampling, and
/// the random leg is what lets the process bootstrap at all.
///
/// Uses *graded* similarity structure (overlapping item windows, so each
/// user has a distinct best-neighbour set): finding the true top-k then
/// requires exploitation, which is exactly what the gossip feedback
/// provides and blind random sampling lacks.
#[test]
fn sampler_legs_each_earn_their_keep() {
    let users = 300u32;
    let config = || {
        HyRecConfig::builder()
            .k(5)
            .anonymize_users(false)
            .seed(17)
            .build()
    };

    let default_server = HyRecServer::with_config(config());
    let random_only = HyRecServer::with_sampler(config(), RandomOnlySampler);
    let no_random = HyRecServer::with_sampler(config(), NoRandomSampler);
    for server in [&default_server, &random_only, &no_random] {
        for u in 0..users {
            // Sliding 10-item window over a 400-item wheel: neighbours at
            // distance d share 10 - d items — graded, not flat.
            for i in 0..10u32 {
                server.record(UserId(u), ItemId((u + i) % 400), Vote::Like);
            }
        }
    }

    let q_default = run_rounds(&default_server, users, 8);
    let q_random = run_rounds(&random_only, users, 8);
    let q_no_random = run_rounds(&no_random, users, 8);

    // Without the random leg the process cannot even bootstrap: the KNN
    // table starts empty, so candidate sets stay empty forever.
    assert_eq!(q_no_random, 0.0, "no-random sampler must fail to bootstrap");
    // The feedback loop exploits structure that random sampling cannot.
    assert!(
        q_default > q_random,
        "2-hop feedback should beat random-only on graded structure: \
         {q_default:.3} vs {q_random:.3}"
    );
    // And it climbs toward the true optimum (top-5 of the wheel: two
    // distance-1 and two distance-2 neighbours plus one distance-3, mean
    // cosine = (2*0.9 + 2*0.8 + 0.7)/5 = 0.82; ring topologies are the
    // slowest case for greedy gossip, so partial convergence is expected).
    assert!(
        q_default > 0.6,
        "default sampler should converge: {q_default:.3}"
    );
}

/// Section 2.4: "Unlike [P2P systems], HyRec allows clients to have offline
/// users within their KNN, thus leveraging clients that are not
/// concurrently online." The server samples from the *profile table*, so
/// users who never return still serve as candidates and neighbours.
#[test]
fn offline_users_still_serve_as_neighbors() {
    let server = HyRecServer::builder()
        .k(4)
        .anonymize_users(false)
        .seed(23)
        .build();
    // Users 0-19 rated once and left forever (they never issue requests).
    for u in 0..20u32 {
        for i in 0..8u32 {
            server.record(UserId(u), ItemId(i), Vote::Like);
        }
    }
    // User 99 is the only online user, with the same taste.
    for i in 0..8u32 {
        server.record(UserId(99), ItemId(i), Vote::Like);
    }
    let widget = Widget::new();
    for _ in 0..3 {
        let job = server.build_job(UserId(99));
        let out = widget.run_job(&job);
        server.apply_update(&out.update);
    }
    let hood = server.knn_of(UserId(99)).expect("knn");
    assert_eq!(hood.len(), 4);
    assert!(
        hood.iter().all(|n| n.user.0 < 20),
        "all neighbours are offline users"
    );
    assert!((hood.view_similarity() - 1.0).abs() < 1e-9);
}

/// The compression-effort trade-off the encoder exploits: FAST costs
/// bandwidth but compresses the same stream correctly.
#[test]
fn compression_effort_tradeoff_is_monotone() {
    use hyrec::wire::deflate::lz77::Effort;
    use hyrec::wire::gzip;
    let server = HyRecServer::builder()
        .k(10)
        .anonymize_users(false)
        .seed(5)
        .build();
    populate(&server, 150);
    let widget = Widget::new();
    for u in 0..150u32 {
        let job = server.build_job(UserId(u));
        server.apply_update(&widget.run_job(&job).update);
    }
    let raw = server.build_job(UserId(0)).to_json().to_bytes();
    let fast = gzip::compress_with(&raw, Effort::FAST);
    let default = gzip::compress_with(&raw, Effort::DEFAULT);
    let best = gzip::compress_with(&raw, Effort::BEST);
    assert!(
        default.len() <= fast.len(),
        "{} vs {}",
        default.len(),
        fast.len()
    );
    assert!(best.len() <= default.len());
    for packed in [&fast, &default, &best] {
        assert_eq!(gzip::decompress(packed).unwrap(), raw);
    }
}

/// Profile-cap ablation (Section 6): capping trades quality for bandwidth
/// but never breaks the loop.
#[test]
fn profile_cap_ablation() {
    let mut sizes = Vec::new();
    for cap in [4usize, 16, 64] {
        let server = HyRecServer::builder()
            .k(4)
            .profile_cap(cap)
            .anonymize_users(false)
            .seed(2)
            .build();
        for u in 0..40u32 {
            for i in 0..64u32 {
                server.record(UserId(u), ItemId((u % 4) * 200 + i), Vote::Like);
            }
        }
        let quality = run_rounds(&server, 40, 3);
        let job = server.build_job(UserId(0));
        sizes.push((cap, job.json_bytes(), quality));
    }
    // Bigger caps, bigger messages.
    assert!(
        sizes[0].1 < sizes[1].1 && sizes[1].1 < sizes[2].1,
        "{sizes:?}"
    );
    // The loop converges at every cap (identical in-group profiles).
    for (cap, _, quality) in &sizes {
        assert!(*quality > 0.9, "cap {cap} broke convergence: {quality}");
    }
}
