//! Reproducibility: every experiment driver is a pure function of its seed.

use hyrec::prelude::*;
use hyrec::sim::replay::{replay_hyrec, ReplayConfig};
use hyrec_datasets::{DatasetSpec, TraceGenerator};

#[test]
fn traces_are_seed_deterministic() {
    let spec = DatasetSpec::DIGG.scaled(0.01);
    let a = TraceGenerator::new(spec, 77).generate();
    let b = TraceGenerator::new(spec, 77).generate();
    assert_eq!(a, b);
    let c = TraceGenerator::new(spec, 78).generate();
    assert_ne!(a, c);
}

#[test]
fn replay_metrics_are_seed_deterministic() {
    let trace = TraceGenerator::new(DatasetSpec::ML1.scaled(0.04), 5)
        .generate()
        .binarize();
    let config = ReplayConfig {
        k: 4,
        seed: 11,
        ..ReplayConfig::default()
    };
    let a = replay_hyrec(&trace, &config);
    let b = replay_hyrec(&trace, &config);
    let views = |r: &hyrec::sim::replay::ReplayResult| {
        r.probes
            .iter()
            .map(|p| p.view_similarity)
            .collect::<Vec<_>>()
    };
    assert_eq!(views(&a), views(&b));

    let c = replay_hyrec(&trace, &ReplayConfig { seed: 12, ..config });
    assert_ne!(views(&a), views(&c), "different sampler seeds must differ");
}

#[test]
fn server_sampling_is_seed_deterministic() {
    let build = |seed: u64| {
        let server = HyRecServer::builder()
            .k(5)
            .seed(seed)
            .anonymize_users(false)
            .build();
        for u in 0..50u32 {
            server.record(UserId(u), ItemId(u % 7), Vote::Like);
        }
        let job = server.build_job(UserId(0));
        job.candidates.iter().map(|c| c.user).collect::<Vec<_>>()
    };
    assert_eq!(build(1), build(1));
    assert_ne!(build(1), build(2));
}

#[test]
fn wire_encoding_is_byte_deterministic() {
    let server = HyRecServer::builder()
        .k(4)
        .seed(9)
        .anonymize_users(false)
        .build();
    for u in 0..20u32 {
        for i in 0..10u32 {
            server.record(UserId(u), ItemId(i), Vote::Like);
        }
    }
    let job = server.build_job(UserId(1));
    assert_eq!(job.encode(), job.encode());
    let encoder = JobEncoder::new();
    assert_eq!(encoder.encode(&job), encoder.encode(&job));
}
