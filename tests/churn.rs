//! Churn behaviour across architectures — the deployment argument of
//! Sections 2.3/2.4: P2P overlays suffer when nodes leave; HyRec's server
//! keeps everyone's state and even uses departed users as neighbours.

use hyrec::gossip::{GossipConfig, GossipNetwork};
use hyrec::prelude::*;

fn community_profiles(n: u32) -> Vec<(UserId, Profile)> {
    // Identical profiles within each community: the converged view
    // similarity is exactly 1.0, making thresholds unambiguous.
    (0..n)
        .map(|u| {
            let c = u % 3;
            (
                UserId(u),
                Profile::from_liked((0..8u32).map(|i| c * 100 + i).collect::<Vec<_>>()),
            )
        })
        .collect()
}

/// Mass churn mid-run: the P2P network's views decay toward dead peers and
/// self-heal only through continued gossip; HyRec's server state is
/// untouched because nothing about a departed user changes server-side.
#[test]
fn hybrid_is_churn_immune_where_p2p_must_self_heal() {
    let profiles = community_profiles(60);

    // --- P2P: converge, then 40% of nodes vanish.
    let mut network = GossipNetwork::new(
        profiles.clone(),
        GossipConfig {
            k: 5,
            ..GossipConfig::default()
        },
    );
    network.run(20);
    let before = network.average_view_similarity();
    for u in (0..60u32).filter(|u| u % 5 < 2) {
        network.set_online(UserId(u), false);
    }
    // Offline nodes' cluster views freeze; survivors must route around the
    // dead peers in their RPS views. Run a few healing cycles.
    network.run(10);
    let after = network.average_view_similarity();
    // The network survives (no collapse), though some entries point at the
    // departed (their profiles remain valid taste evidence).
    assert!(
        after > before * 0.5,
        "P2P collapsed: {before:.3} -> {after:.3}"
    );

    // --- HyRec: the same "churn" has no effect on anything the server
    // serves. Departed users' profiles still power candidate sets.
    let server = HyRecServer::builder()
        .k(5)
        .anonymize_users(false)
        .seed(77)
        .build();
    for (user, profile) in &profiles {
        for item in profile.liked() {
            server.record(*user, item, Vote::Like);
        }
    }
    let widget = Widget::new();
    // Only 60% of users are ever online; the rest never issue a request.
    let online: Vec<UserId> = (0..60u32).filter(|u| u % 5 >= 2).map(UserId).collect();
    for _ in 0..5 {
        for &user in &online {
            let job = server.build_job(user);
            let out = widget.run_job(&job);
            server.apply_update(&out.update);
        }
    }
    // Online users converge fully, with offline users as valid neighbours.
    let mut used_offline_neighbor = false;
    for &user in &online {
        let hood = server.knn_of(user).expect("knn");
        assert!(
            hood.view_similarity() > 0.8,
            "{user} failed to converge: {:.3}",
            hood.view_similarity()
        );
        if hood.users().any(|v| v.0 % 5 < 2) {
            used_offline_neighbor = true;
        }
    }
    assert!(
        used_offline_neighbor,
        "HyRec should leverage offline users' profiles (Section 2.4)"
    );
}

/// Network partition in the P2P overlay: two islands keep converging
/// internally — and cannot see each other's novelties, unlike HyRec where
/// the server bridges everyone.
#[test]
fn p2p_partition_isolates_novelty_hyrec_does_not() {
    // Two 20-user groups with *identical* tastes across the partition line.
    let profiles: Vec<(UserId, Profile)> = (0..40u32)
        .map(|u| {
            (
                UserId(u),
                Profile::from_liked((0..8u32).map(|i| (u % 2) * 50 + i).collect::<Vec<_>>()),
            )
        })
        .collect();

    let mut network = GossipNetwork::new(
        profiles.clone(),
        GossipConfig {
            k: 4,
            ..GossipConfig::default()
        },
    );
    network.run(15);
    // Partition: users 20..40 go dark.
    for u in 20..40u32 {
        network.set_online(UserId(u), false);
    }
    // A novel item appears on the dark side.
    network.record(UserId(21), ItemId(999), Vote::Like);
    network.run(10);
    // No online node can ever recommend it: the snapshot holding it is
    // frozen behind the partition.
    let leaked = (0..20u32).any(|u| {
        network
            .recommend(UserId(u), 20)
            .iter()
            .any(|r| r.item == ItemId(999))
    });
    assert!(!leaked, "partitioned novelty must not propagate in P2P");

    // HyRec: the same novelty reaches the other side through the server.
    let server = HyRecServer::builder()
        .k(4)
        .anonymize_users(false)
        .seed(13)
        .build();
    for (user, profile) in &profiles {
        for item in profile.liked() {
            server.record(*user, item, Vote::Like);
        }
    }
    let widget = Widget::new();
    for _ in 0..3 {
        for u in 0..40u32 {
            let job = server.build_job(UserId(u));
            server.apply_update(&widget.run_job(&job).update);
        }
    }
    // Several same-taste users (all "offline" in P2P terms) rate the novel
    // item; only the server needs to know. Multiple raters guarantee the
    // sampler surfaces at least one of them in any candidate set drawn
    // from u1's (same-taste) neighbourhood.
    for u in (21..40u32).step_by(2) {
        server.record(UserId(u), ItemId(999), Vote::Like);
    }
    // An online same-taste user requests recommendations.
    let job = server.build_job(UserId(1));
    let out = widget.run_job(&job);
    assert!(
        out.recommendations.iter().any(|r| r.item == ItemId(999)),
        "HyRec should surface the novelty through the server: {:?}",
        out.recommendations
    );
}
