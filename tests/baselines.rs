//! Cross-architecture agreement: the hybrid loop, the offline back-ends and
//! the P2P network must all discover the same similarity structure, and the
//! quality ordering of Figure 6 must hold end to end.

use hyrec::gossip::{GossipConfig, GossipNetwork};
use hyrec::prelude::*;
use hyrec::sim::quality;
use hyrec_datasets::{DatasetSpec, TraceGenerator};
use hyrec_server::offline::{CRecBackend, ExhaustiveBackend, MahoutLikeBackend, OfflineBackend};

fn shared(profiles: &[(UserId, Profile)]) -> Vec<(UserId, SharedProfile)> {
    profiles
        .iter()
        .map(|(u, p)| (*u, SharedProfile::new(p.clone())))
        .collect()
}

fn clustered_profiles() -> Vec<(UserId, Profile)> {
    (0..60u32)
        .map(|u| {
            let c = u % 4;
            let profile = Profile::from_liked(
                (0..8u32)
                    .map(|i| c * 100 + (u / 4 + i) % 12)
                    .collect::<Vec<_>>(),
            );
            (UserId(u), profile)
        })
        .collect()
}

fn quality_of(table: &[(UserId, hyrec_core::Neighborhood)]) -> f64 {
    table.iter().map(|(_, h)| h.view_similarity()).sum::<f64>() / table.len() as f64
}

#[test]
fn all_knn_architectures_agree_on_structure() {
    let profiles = clustered_profiles();
    let k = 5;

    // Exact back-ends agree exactly; the sampling one comes close.
    let shared_profiles = shared(&profiles);
    let exhaustive = ExhaustiveBackend::new(2).compute(&shared_profiles, k);
    let mahout = MahoutLikeBackend {
        max_prefs_per_item: usize::MAX,
        ..Default::default()
    }
    .compute(&shared_profiles, k);
    let crec = CRecBackend::new(2).compute(&shared_profiles, k);
    let (qe, qm, qc) = (
        quality_of(&exhaustive),
        quality_of(&mahout),
        quality_of(&crec),
    );
    assert!(
        (qe - qm).abs() < 1e-9,
        "exact backends diverge: {qe} vs {qm}"
    );
    assert!(qc > qe * 0.9, "sampling backend too far off: {qc} vs {qe}");

    // The hybrid loop reaches the same neighbourhood quality.
    let server = HyRecServer::builder()
        .k(k)
        .anonymize_users(false)
        .seed(8)
        .build();
    for (user, profile) in &profiles {
        for item in profile.liked() {
            server.record(*user, item, Vote::Like);
        }
    }
    let widget = Widget::new();
    for _ in 0..6 {
        for (user, _) in &profiles {
            let job = server.build_job(*user);
            let out = widget.run_job(&job);
            server.apply_update(&out.update);
        }
    }
    let qh = server.average_view_similarity();
    assert!(qh > qe * 0.9, "hybrid loop too far off: {qh} vs {qe}");

    // And so does the fully decentralized network.
    let mut network = GossipNetwork::new(
        profiles.clone(),
        GossipConfig {
            k,
            ..GossipConfig::default()
        },
    );
    network.run(25);
    let qp = network.average_view_similarity();
    assert!(qp > qe * 0.85, "p2p too far off: {qp} vs {qe}");
}

#[test]
fn figure6_quality_ordering_holds() {
    let trace = TraceGenerator::new(DatasetSpec::ML1.scaled(0.08), 17)
        .generate()
        .binarize();
    let (train, test) = trace.split_chronological(0.8);
    let k = 5;
    let n = 10;

    let online = quality::quality_online_ideal(&train, &test, k, n);
    let hyrec = quality::quality_hyrec(&train, &test, k, n, 3);
    let never = quality::quality_offline(&train, &test, k, n, train.horizon().0 * 100);

    // Online ideal bounds HyRec; HyRec beats a cold offline table.
    assert!(online.hits[n - 1] >= hyrec.hits[n - 1]);
    assert!(hyrec.hits[n - 1] > never.hits[n - 1]);
    assert!(hyrec.positives > 0);
}

#[test]
fn p2p_and_hybrid_agree_on_bandwidth_asymmetry() {
    // The defining Section 5.6 result: P2P pays traffic every cycle,
    // HyRec only on requests.
    let profiles = clustered_profiles();
    let mut network = GossipNetwork::new(
        profiles.clone(),
        GossipConfig {
            k: 5,
            ..GossipConfig::default()
        },
    );
    network.run(50); // ~50 minutes of P2P operation
    let p2p_per_node = network.bandwidth_report().mean_bytes_per_node;

    let server = HyRecServer::builder().k(5).seed(6).build();
    for (user, profile) in &profiles {
        for item in profile.liked() {
            server.record(*user, item, Vote::Like);
        }
    }
    let widget = Widget::new();
    let mut hyrec_bytes = 0u64;
    for (user, _) in &profiles {
        let job = server.build_job(*user);
        let out = widget.run_job(&job);
        hyrec_bytes += job.gzip_bytes() as u64 + out.update.encode().len() as u64;
        server.apply_update(&out.update);
    }
    let hyrec_per_user = hyrec_bytes as f64 / profiles.len() as f64;
    assert!(
        p2p_per_node > hyrec_per_user * 5.0,
        "p2p {p2p_per_node:.0}B/node should dwarf hyrec {hyrec_per_user:.0}B/user"
    );
}
