//! End-to-end integration: dataset → wire → server → widget → convergence.
//!
//! Unlike the in-process unit tests, every personalization job and KNN
//! update here crosses the *real wire encoding* (JSON + gzip), exercising
//! datasets, core, wire, client and server together.

use hyrec::prelude::*;
use hyrec_datasets::{DatasetSpec, TraceGenerator};

/// Replays a scaled ML1 trace with full wire encoding on every exchange.
#[test]
fn trace_replay_over_the_wire_converges() {
    let spec = DatasetSpec::ML1.scaled(0.05);
    let trace = TraceGenerator::new(spec, 21).generate().binarize();
    let server = HyRecServer::builder().k(5).seed(4).build();
    let encoder = JobEncoder::new();
    let widget = Widget::new();

    for event in trace.iter() {
        server.record(event.user, event.item, event.vote);
        let job = server.build_job(event.user);

        // Server → browser: chunk-cached gzip JSON.
        let bytes = encoder.encode(&job);
        let received = PersonalizationJob::decode(&bytes).expect("job decodes");
        assert_eq!(received, job);

        // Browser computes and replies over the wire.
        let (_, update_bytes) = widget
            .run_encoded_job(&bytes)
            .expect("widget handles wire job");
        let update = KnnUpdate::decode(&update_bytes).expect("update decodes");
        server.apply_update(&update);
    }

    assert!(
        server.average_view_similarity() > 0.1,
        "converged similarity too low: {}",
        server.average_view_similarity()
    );
    assert_eq!(server.requests_served(), trace.len() as u64);
    assert_eq!(server.updates_applied(), trace.len() as u64);
}

/// Pseudonym rotation mid-replay must not corrupt the KNN table.
#[test]
fn anonymization_rotation_is_transparent_to_convergence() {
    let server = HyRecServer::builder().k(4).seed(9).build();
    let widget = Widget::new();
    for u in 0..30u32 {
        for i in 0..6u32 {
            server.record(UserId(u), ItemId((u % 3) * 100 + i), Vote::Like);
        }
    }
    for round in 0..6 {
        if round % 2 == 1 {
            server.rotate_pseudonyms();
        }
        for u in 0..30u32 {
            let job = server.build_job(UserId(u));
            // All candidate ids must be pseudonyms, never real ids.
            for c in job.candidates.iter() {
                assert!(c.user.0 >= 30, "real id {} leaked", c.user);
            }
            let out = widget.run_job(&job);
            server.apply_update(&out.update);
        }
    }
    assert!(server.average_view_similarity() > 0.9);
    // Stored neighbours are real ids again.
    for u in 0..30u32 {
        let hood = server.knn_of(UserId(u)).expect("knn");
        for n in hood.iter() {
            assert!(n.user.0 < 30, "pseudonym {} stored", n.user);
        }
    }
}

/// Profile caps propagate through the wire and bound message sizes.
#[test]
fn profile_caps_bound_wire_sizes() {
    let capped = HyRecServer::builder().k(5).profile_cap(20).seed(3).build();
    let uncapped = HyRecServer::builder().k(5).seed(3).build();
    for server in [&capped, &uncapped] {
        for u in 0..30u32 {
            for i in 0..200u32 {
                server.record(UserId(u), ItemId(i), Vote::Like);
            }
        }
    }
    // Warm both KNN tables so candidate sets are comparable.
    let widget = Widget::new();
    for server in [&capped, &uncapped] {
        for u in 0..30u32 {
            let job = server.build_job(UserId(u));
            let out = widget.run_job(&job);
            server.apply_update(&out.update);
        }
    }
    let capped_job = capped.build_job(UserId(0));
    let uncapped_job = uncapped.build_job(UserId(0));
    assert!(capped_job.profile.liked_len() <= 20);
    assert!(
        capped_job.json_bytes() < uncapped_job.json_bytes() / 3,
        "cap should shrink messages: {} vs {}",
        capped_job.json_bytes(),
        uncapped_job.json_bytes()
    );
}

/// New users (cold start) get jobs immediately and join the graph.
#[test]
fn cold_start_user_joins_within_one_round() {
    let server = HyRecServer::builder()
        .k(3)
        .seed(1)
        .anonymize_users(false)
        .build();
    let widget = Widget::new();
    for u in 0..20u32 {
        for i in 0..5u32 {
            server.record(UserId(u), ItemId(i), Vote::Like);
        }
        let job = server.build_job(UserId(u));
        let out = widget.run_job(&job);
        server.apply_update(&out.update);
    }
    // Newcomer rates one item and immediately gets neighbours.
    server.record(UserId(99), ItemId(0), Vote::Like);
    let job = server.build_job(UserId(99));
    assert!(!job.candidates.is_empty());
    let out = widget.run_job(&job);
    assert!(!out.update.neighbors.is_empty());
    assert!(!out.recommendations.is_empty());
    server.apply_update(&out.update);
    assert!(server.knn_of(UserId(99)).is_some());
}
