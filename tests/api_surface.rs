//! Table 1 surface: the web API plus every customization hook, exercised
//! from outside the workspace crates exactly as a content provider would.

use hyrec::client::{RecommendationPolicy, Widget};
use hyrec::http::{api, HttpClient, HttpServer};
use hyrec::prelude::*;
use hyrec::server::sampler::{Sampler, SamplerContext};
use hyrec_core::{CandidateSet, Recommendation};
use std::sync::Arc;

/// A downstream similarity metric (the `setSimilarity()` hook).
#[derive(Debug, Clone, Copy)]
struct SharedItems;

impl Similarity for SharedItems {
    fn score(&self, a: &Profile, b: &Profile) -> f64 {
        // Raw overlap count squashed into [0, 1].
        let shared = a.liked_intersection_len(b) as f64;
        shared / (1.0 + shared)
    }

    fn name(&self) -> &'static str {
        "shared-items"
    }
}

/// A downstream recommendation policy (the `setRecommendedItems()` hook).
#[derive(Debug, Clone, Copy)]
struct FirstSeen;

impl RecommendationPolicy for FirstSeen {
    fn recommend(
        &self,
        profile: &Profile,
        candidates: &CandidateSet,
        r: usize,
    ) -> Vec<Recommendation> {
        let mut out = Vec::new();
        for c in candidates.iter() {
            for item in c.profile.liked() {
                if !profile.contains(item)
                    && !out.iter().any(|rec: &Recommendation| rec.item == item)
                {
                    out.push(Recommendation {
                        item,
                        popularity: 1,
                    });
                    if out.len() == r {
                        return out;
                    }
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "first-seen"
    }
}

/// A downstream sampler (Table 1's server-side `Sampler` interface):
/// neighbours only, no 2-hop.
#[derive(Debug, Clone, Copy)]
struct OneHopSampler;

impl Sampler for OneHopSampler {
    fn sample(
        &self,
        user: UserId,
        _k: usize,
        random_candidates: usize,
        ctx: &SamplerContext<'_>,
        rng: &mut rand::rngs::StdRng,
    ) -> CandidateSet {
        let mut set = CandidateSet::new();
        if let Some(neighbors) = ctx.knn.with(user, |h| h.users().collect::<Vec<_>>()) {
            for v in neighbors {
                if let Some(p) = ctx.profiles.get(v) {
                    set.insert(v, p);
                }
            }
        }
        for v in ctx.directory.random_users(random_candidates, rng) {
            if v != user {
                if let Some(p) = ctx.profiles.get(v) {
                    set.insert(v, p);
                }
            }
        }
        set
    }

    fn name(&self) -> &'static str {
        "one-hop"
    }
}

#[test]
fn custom_hooks_compose_end_to_end() {
    let config = HyRecConfig::builder()
        .k(3)
        .r(4)
        .anonymize_users(false)
        .seed(2)
        .build();
    let server = hyrec::server::HyRecServer::with_sampler(config, OneHopSampler);
    let widget = Widget::builder()
        .similarity(SharedItems)
        .policy(FirstSeen)
        .build();
    assert_eq!(widget.similarity_name(), "shared-items");
    assert_eq!(widget.policy_name(), "first-seen");

    for u in 0..20u32 {
        for i in 0..5u32 {
            server.record(UserId(u), ItemId((u % 2) * 50 + i), Vote::Like);
        }
    }
    for _ in 0..4 {
        for u in 0..20u32 {
            let job = server.build_job(UserId(u));
            let out = widget.run_job(&job);
            server.apply_update(&out.update);
        }
    }
    // Custom metric still clusters the two taste groups.
    let hood = server.knn_of(UserId(0)).expect("knn");
    assert!(!hood.is_empty());
    for n in hood.iter() {
        assert_eq!(n.user.0 % 2, 0, "wrong group neighbour {}", n.user);
    }
}

#[test]
fn web_api_covers_table_1() {
    let hyrec = Arc::new(
        hyrec::server::HyRecServer::builder()
            .k(3)
            .r(5)
            .anonymize_users(false)
            .seed(5)
            .build(),
    );
    for u in 0..10u32 {
        for i in 0..4u32 {
            hyrec.record(UserId(u), ItemId(i), Vote::Like);
        }
    }
    let server = HttpServer::bind("127.0.0.1:0", 2).expect("bind");
    let addr = server.local_addr();
    let handle = server.serve(api::hyrec_router(Arc::clone(&hyrec)));
    let client = HttpClient::new(addr);

    // Row 1: client request.
    let response = client.get("/online/?uid=3").expect("online");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("content-encoding"), Some("gzip"));
    let job = PersonalizationJob::decode(&response.body).expect("job decodes");
    assert_eq!(job.uid, UserId(3));

    // Row 2: update KNN selection (GET form with indexed params).
    let response = client
        .get("/neighbors/?uid=3&id0=1&sim0=0.8&id1=2&sim1=0.6")
        .expect("neighbors");
    assert_eq!(response.status, 200);
    let hood = hyrec.knn_of(UserId(3)).expect("stored");
    assert_eq!(hood.len(), 2);
    assert_eq!(hood.best().unwrap().user, UserId(1));

    // Profile updates flow through /rate/.
    let response = client.get("/rate/?uid=3&item=77&like=1").expect("rate");
    assert_eq!(response.status, 200);
    assert!(hyrec.profile_of(UserId(3)).unwrap().likes(ItemId(77)));

    handle.stop();
}
