//! Concurrency smoke tests: the sharded `parking_lot` tables under real
//! contention. Eight threads hammer the full request cycle — `record`,
//! `build_job`/`build_jobs`, widget run, `apply_update`/`apply_updates` —
//! against one shared server, validating that the zero-copy pipeline's
//! shared handles and the batched entry points are safe under interleaving
//! (no deadlocks across the rng/anonymizer/shard locks, no lost writes,
//! internally consistent jobs).

use hyrec::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const THREADS: u32 = 8;
const USERS_PER_THREAD: u32 = 100;
const ROUNDS: u32 = 30;

fn shared_server(anonymize: bool) -> Arc<HyRecServer> {
    Arc::new(
        HyRecServer::builder()
            .k(5)
            .r(5)
            .anonymize_users(anonymize)
            .seed(99)
            .build(),
    )
}

#[test]
fn eight_threads_hammer_record_build_apply() {
    let server = shared_server(false);
    let jobs_built = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let server = Arc::clone(&server);
            let jobs_built = Arc::clone(&jobs_built);
            std::thread::spawn(move || {
                let widget = Widget::new();
                // Each thread owns a disjoint user range but reads (and
                // neighbours with) everyone through the shared tables.
                let base = t * USERS_PER_THREAD;
                for round in 0..ROUNDS {
                    for u in 0..USERS_PER_THREAD {
                        let user = UserId(base + u);
                        // Overlapping item space across threads so
                        // candidate sets cross shard boundaries.
                        server.record(user, ItemId((u + round) % 40), Vote::Like);
                        let job = server.build_job(user);
                        assert_eq!(job.uid, user);
                        assert!(!job.candidates.contains(user), "self in own candidates");
                        let out = widget.run_job(&job);
                        server.apply_update(&out.update);
                        jobs_built.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    let expected = u64::from(THREADS * USERS_PER_THREAD * ROUNDS);
    assert_eq!(jobs_built.load(Ordering::Relaxed), expected);
    assert_eq!(server.requests_served(), expected);
    assert_eq!(server.updates_applied(), expected);
    assert_eq!(server.user_count() as u32, THREADS * USERS_PER_THREAD);
    // Every user ended with a live neighbourhood.
    for t in 0..THREADS {
        for u in 0..USERS_PER_THREAD {
            let user = UserId(t * USERS_PER_THREAD + u);
            assert!(server.profile_of(user).is_some(), "lost profile for {user}");
            assert!(server.knn_of(user).is_some(), "lost knn for {user}");
        }
    }
}

#[test]
fn eight_threads_hammer_batched_entry_points() {
    // Same contention pattern through build_jobs/apply_updates, with
    // pseudonymization on so the anonymizer lock is in the mix too.
    let server = shared_server(true);

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let widget = Widget::new();
                let base = t * USERS_PER_THREAD;
                let users: Vec<UserId> = (0..USERS_PER_THREAD).map(|u| UserId(base + u)).collect();
                for round in 0..ROUNDS / 3 {
                    for &user in &users {
                        server.record(user, ItemId((user.0 + round) % 40), Vote::Like);
                    }
                    let jobs = server.build_jobs(&users);
                    assert_eq!(jobs.len(), users.len());
                    let updates: Vec<KnnUpdate> =
                        jobs.iter().map(|job| widget.run_job(job).update).collect();
                    server.apply_updates(&updates);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    let expected = u64::from(THREADS * USERS_PER_THREAD * (ROUNDS / 3));
    assert_eq!(server.requests_served(), expected);
    assert_eq!(server.updates_applied(), expected);
    // Pseudonyms resolved: the KNN table holds only real user ids.
    let max_real = THREADS * USERS_PER_THREAD;
    for t in 0..THREADS {
        let user = UserId(t * USERS_PER_THREAD);
        let hood = server.knn_of(user).expect("knn exists");
        for n in hood.iter() {
            assert!(n.user.0 < max_real, "pseudonym leaked into KNN table");
        }
    }
}

#[test]
fn concurrent_readers_see_consistent_snapshots() {
    // Writers mutate profiles while readers snapshot and build jobs; every
    // observed profile handle must be internally consistent (the Arc
    // clone-on-write discipline never exposes a half-updated profile).
    let server = shared_server(false);
    for u in 0..50u32 {
        server.record(UserId(u), ItemId(0), Vote::Like);
    }
    let stop = Arc::new(AtomicU64::new(0));

    let writer = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 1u32;
            while stop.load(Ordering::Relaxed) == 0 {
                server.record(UserId(i % 50), ItemId(i % 1000), Vote::Like);
                i = i.wrapping_add(1);
            }
        })
    };

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    let snapshot = server.profiles().snapshot();
                    assert_eq!(snapshot.len(), 50);
                    for (_, profile) in &snapshot {
                        // liked() iterates a sorted vector; a torn profile
                        // would violate sortedness.
                        let liked: Vec<ItemId> = profile.liked().collect();
                        assert!(liked.windows(2).all(|w| w[0] < w[1]));
                    }
                }
            })
        })
        .collect();

    for r in readers {
        r.join().expect("reader panicked");
    }
    stop.store(1, Ordering::Relaxed);
    writer.join().expect("writer panicked");
}
